//! End-to-end validation of the optimizations: every transformation must
//! preserve the interpreter-observable semantics while reducing the memory
//! traffic it targets.

use arrayflow_analyses::analyze_loop;
use arrayflow_ir::interp::run_with;
use arrayflow_ir::{parse_program, Env, Program};
use arrayflow_machine::{compile, compile_with, Machine};
use arrayflow_opt::{
    allocate, controlled_unroll, dep_graph, eliminate_redundant_loads, eliminate_redundant_stores,
    unroll, PipelineConfig, UnrollConfig,
};

/// Seeds every array of `p` with a deterministic pattern over a wide index
/// range and a few scalars, runs, and returns the final environment.
fn run_seeded(p: &Program) -> Env {
    run_with(p, |e| {
        for a in p.symbols.array_ids() {
            for k in -64..2200 {
                e.set_elem(a, vec![k], k * 13 + 7);
            }
        }
        for v in p.symbols.var_ids() {
            e.set_scalar(v, (v.0 as i64 % 5) + 1);
        }
    })
    .unwrap()
}

fn assert_equiv(orig: &Program, opt: &Program) -> (Env, Env) {
    let e1 = run_seeded(orig);
    let e2 = run_seeded(opt);
    // Compare only the arrays of the original program (temporaries may add
    // scalars, never arrays).
    for a in orig.symbols.array_ids() {
        assert_eq!(
            e1.array_state().get(&a),
            e2.array_state().get(&a),
            "array {} differs\noriginal:\n{}\noptimized:\n{}",
            orig.array_name(a),
            arrayflow_ir::pretty::print_program(orig),
            arrayflow_ir::pretty::print_program(opt),
        );
    }
    (e1, e2)
}

#[test]
fn load_elim_fig7_semantics_and_counts() {
    // Fig. 7: the load of A[i] is 1-redundant (A[i+1] was stored the
    // previous iteration).
    let p = parse_program(
        "do i = 1, 1000
           if c > 0 then s := A[i] + s; end
           A[i+1] := s * 2;
         end",
    )
    .unwrap();
    let r = eliminate_redundant_loads(&p).unwrap();
    assert!(
        r.replaced_uses >= 1,
        "expected the A[i] read to be replaced"
    );
    let (e1, e2) = assert_equiv(&p, &r.program);
    assert!(
        e2.stats.array_reads < e1.stats.array_reads,
        "reads should drop: {} -> {}",
        e1.stats.array_reads,
        e2.stats.array_reads
    );
    // The conditional read is replaced by the temporary: zero reads in the
    // steady-state loop (one peeled start-up iteration + the chain init).
    assert_eq!(e2.stats.array_reads, 2);
}

#[test]
fn load_elim_stencil_chain() {
    // Distance-2 chain through a def generator.
    let p = parse_program("do i = 1, 500 A[i+2] := A[i] + x; end").unwrap();
    let r = eliminate_redundant_loads(&p).unwrap();
    assert_eq!(r.chains, 1);
    let (e1, e2) = assert_equiv(&p, &r.program);
    assert_eq!(e1.stats.array_reads, 500);
    // Two peeled start-up iterations + two chain-init loads.
    assert_eq!(e2.stats.array_reads, 4, "start-up + chain-init loads only");
}

#[test]
fn load_elim_leaves_unsafe_reuse_alone() {
    // Conditional kill: no guaranteed reuse, nothing replaced.
    let p = parse_program(
        "do i = 1, 100
           s := A[i-1] + s;
           if s > 3 then A[i] := s; end
         end",
    )
    .unwrap();
    let r = eliminate_redundant_loads(&p).unwrap();
    assert_eq!(r.replaced_uses, 0);
    assert_equiv(&p, &r.program);
}

#[test]
fn load_elim_multiple_arrays() {
    let p = parse_program(
        "do i = 1, 300
           A[i+1] := A[i] + B[i];
           B[i+1] := A[i+1] * 2;
         end",
    )
    .unwrap();
    let r = eliminate_redundant_loads(&p).unwrap();
    assert!(r.chains >= 2, "chains for A and B: {r:?}");
    let (e1, e2) = assert_equiv(&p, &r.program);
    assert!(e2.stats.array_reads < e1.stats.array_reads / 2);
}

#[test]
fn store_elim_fig6_semantics_and_counts() {
    let p = parse_program(
        "do i = 1, 1000
           A[i] := x;
           if c == 0 then A[i+1] := y; end
         end",
    )
    .unwrap();
    let r = eliminate_redundant_stores(&p).unwrap();
    assert_eq!(r.removed.len(), 1);
    assert_eq!(r.unpeeled, 1);
    let (e1, e2) = assert_equiv(&p, &r.program);
    // The conditional store is gone from 999 iterations (c == 0 seeds to
    // truthy or not; compare against the actual counts).
    assert!(
        e2.stats.array_writes <= e1.stats.array_writes,
        "{} -> {}",
        e1.stats.array_writes,
        e2.stats.array_writes
    );
}

#[test]
fn store_elim_dead_store() {
    let p = parse_program(
        "do i = 1, 100
           A[i] := 1;
           A[i] := 2;
         end",
    )
    .unwrap();
    let r = eliminate_redundant_stores(&p).unwrap();
    assert_eq!(r.removed.len(), 1);
    assert_eq!(r.unpeeled, 0);
    let (e1, e2) = assert_equiv(&p, &r.program);
    assert_eq!(e1.stats.array_writes, 200);
    assert_eq!(e2.stats.array_writes, 100);
}

#[test]
fn store_elim_respects_intervening_reads() {
    let p = parse_program(
        "do i = 1, 200
           s := A[i] + s;
           A[i] := s;
           A[i+1] := s * 3;
         end",
    )
    .unwrap();
    // A[i+1] is overwritten by A[i] next iteration, but the read at the top
    // of the next iteration consumes it first → not redundant.
    let r = eliminate_redundant_stores(&p).unwrap();
    assert!(r.removed.is_empty(), "{:?}", r.removed);
    assert_equiv(&p, &r.program);
}

#[test]
fn store_elim_symbolic_bound_is_conservative() {
    let p = parse_program(
        "do i = 1, UB
           A[i] := x;
           if c == 0 then A[i+1] := y; end
         end",
    )
    .unwrap();
    let r = eliminate_redundant_stores(&p).unwrap();
    // δ ≥ 1 unpeeling needs a constant trip count.
    assert!(r.removed.is_empty());
}

#[test]
fn unroll_preserves_semantics_for_odd_bounds() {
    for (ub, factor) in [(10, 2), (11, 2), (13, 4), (7, 8), (8, 3)] {
        let src = format!(
            "do i = 1, {ub}
               A[i+1] := A[i] + i;
               if A[i] > 50 then B[i] := A[i+1]; end
             end"
        );
        let p = parse_program(&src).unwrap();
        let u = unroll(&p, factor).unwrap();
        assert_equiv(&p, &u);
    }
}

#[test]
fn unroll_symbolic_bound() {
    let p = parse_program("do i = 1, UB A[i] := i * 2; end").unwrap();
    let u = unroll(&p, 3).unwrap();
    let ubv = p.symbols.lookup_var("UB").unwrap();
    for n in [0i64, 1, 2, 3, 7, 12] {
        let seed = |e: &mut Env| e.set_scalar(ubv, n);
        let e1 = run_with(&p, seed).unwrap();
        let e2 = run_with(&u, seed).unwrap();
        assert_eq!(e1.array_state(), e2.array_state(), "UB = {n}");
    }
}

#[test]
fn dep_graph_critical_path_bounds() {
    // Serial chain: A[i+1] := A[i] — the unrolled path grows linearly
    // (l_unroll = 2·l for factor 2).
    let p = parse_program("do i = 1, 100 A[i+1] := A[i] + 1; end").unwrap();
    let a = analyze_loop(&p).unwrap();
    let g = dep_graph(&a, 8);
    let l1 = g.critical_path(1);
    let l2 = g.critical_path(2);
    assert_eq!(l1, 1);
    assert_eq!(l2, 2, "distance-1 dependence serializes the copies");
    assert!(l2 <= 2 * l1);

    // Independent iterations: A[i] := B[i] — unrolling adds parallelism,
    // path stays flat.
    let p2 = parse_program("do i = 1, 100 A[i] := B[i] + 1; end").unwrap();
    let a2 = analyze_loop(&p2).unwrap();
    let g2 = dep_graph(&a2, 8);
    assert_eq!(g2.critical_path(1), g2.critical_path(4));
}

#[test]
fn prediction_matches_ground_truth_on_unrolled_body() {
    // Predict l_unroll from the original loop's dependence distances, then
    // actually unroll and measure the distance-0 critical path.
    let p = parse_program(
        "do i = 1, 64
           A[i+1] := A[i] + B[i];
           C[i] := A[i+1] * 2;
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    let g = dep_graph(&a, 8);
    for f in [2u64, 4] {
        let predicted = g.critical_path(f);
        let unrolled = unroll(&p, f).unwrap();
        // The unrolled program has two loops (main + remainder); analyze the
        // main one.
        let main = match &unrolled.body[0] {
            arrayflow_ir::Stmt::Do(l) => l.clone(),
            _ => panic!(),
        };
        let ua = arrayflow_analyses::LoopAnalysis::of_loop(&main, &unrolled.symbols).unwrap();
        let ug = dep_graph(&ua, 1);
        let actual = ug.critical_path(1);
        assert_eq!(
            predicted, actual,
            "factor {f}: predicted {predicted} vs measured {actual}"
        );
    }
}

#[test]
fn controlled_unroll_stops_on_serial_loops() {
    // Fully serial: unrolling creates no parallelism — the controller
    // should refuse (factor 1) with a strict threshold.
    let p = parse_program("do i = 1, 100 A[i+1] := A[i] + 1; end").unwrap();
    let r = controlled_unroll(
        &p,
        &UnrollConfig {
            threshold: 0.99,
            max_factor: 8,
        },
    )
    .unwrap();
    assert_eq!(r.factor, 1, "{:?}", r.history);

    // Parallel loop: unrolls to the maximum.
    let p2 = parse_program("do i = 1, 100 A[i] := B[i] + 1; end").unwrap();
    let r2 = controlled_unroll(
        &p2,
        &UnrollConfig {
            threshold: 1.0,
            max_factor: 8,
        },
    )
    .unwrap();
    assert_eq!(r2.factor, 8, "{:?}", r2.history);
    assert_equiv(&p2, &r2.program);
}

#[test]
fn pipeline_allocation_fig5() {
    let p = parse_program("do i = 1, 1000 A[i+2] := A[i] + x; end").unwrap();
    let analysis = analyze_loop(&p).unwrap();
    let alloc = allocate(&analysis, &PipelineConfig::default());
    assert_eq!(alloc.plan.ranges.len(), 1, "{:?}", alloc.irig.ranges);
    let range = &alloc.plan.ranges[0];
    assert_eq!(range.depth, 3, "Fig. 5 needs a 3-stage pipeline");
    assert!(range.gen_is_def);
    assert_eq!(range.reuse_points.len(), 1);
    assert_eq!(range.reuse_points[0].distance, 2);

    // Run both versions on the machine: loads drop to the preamble only.
    let x = p.symbols.lookup_var("x").unwrap();
    let a = p.symbols.lookup_array("A").unwrap();
    let conv = compile(&p).unwrap();
    let pipe = compile_with(&p, &alloc.plan).unwrap();
    let mut m1 = Machine::new();
    let mut m2 = Machine::new();
    for m in [&mut m1, &mut m2] {
        m.set_mem(a, 1, 3);
        m.set_mem(a, 2, 9);
    }
    m1.set_reg(conv.scalar_regs[&x], 7);
    m2.set_reg(pipe.scalar_regs[&x], 7);
    m1.run(&conv.code).unwrap();
    m2.run(&pipe.code).unwrap();
    assert_eq!(m1.memory(), m2.memory());
    assert_eq!(m1.stats.loads, 1000);
    // Two peeled start-up iterations plus the two stage-init loads.
    assert_eq!(m2.stats.loads, 4);
}

#[test]
fn pipeline_respects_register_budget() {
    // Depth-9 pipeline needs 9 registers + iv; with only 6 registers the
    // allocator must spill it.
    let p = parse_program("do i = 1, 100 A[i+8] := A[i] + 1; end").unwrap();
    let analysis = analyze_loop(&p).unwrap();
    let tight = allocate(
        &analysis,
        &PipelineConfig {
            registers: 6,
            ..PipelineConfig::default()
        },
    );
    assert!(tight.plan.ranges.is_empty(), "{:?}", tight.colored);
    // With the default move cost, a depth-9 pipeline serving one reuse is
    // *unprofitable* (8 progression moves vs one saved load) — the §4.1.4
    // overallocation guard refuses it even with room to spare.
    let unprofitable = allocate(
        &analysis,
        &PipelineConfig {
            registers: 16,
            ..PipelineConfig::default()
        },
    );
    assert!(unprofitable.plan.ranges.is_empty());
    // Free moves (e.g. the Cydra 5 ICP hardware of §4.1.4): allocated.
    let roomy = allocate(
        &analysis,
        &PipelineConfig {
            registers: 16,
            move_cost: 0.0,
            ..PipelineConfig::default()
        },
    );
    assert_eq!(roomy.plan.ranges.len(), 1);
    assert_eq!(roomy.plan.ranges[0].depth, 9);
}

#[test]
fn pipeline_with_conditional_reads() {
    // Reuse points under conditionals are served correctly: semantics are
    // checked via the machine.
    let p = parse_program(
        "do i = 1, 200
           A[i+1] := A[i] + 1;
           if A[i+1] > 100 then B[i] := A[i]; end
         end",
    )
    .unwrap();
    let analysis = analyze_loop(&p).unwrap();
    let alloc = allocate(&analysis, &PipelineConfig::default());
    assert!(!alloc.plan.ranges.is_empty());
    let conv = compile(&p).unwrap();
    let pipe = compile_with(&p, &alloc.plan).unwrap();
    let a = p.symbols.lookup_array("A").unwrap();
    let mut m1 = Machine::new();
    let mut m2 = Machine::new();
    for m in [&mut m1, &mut m2] {
        m.set_mem(a, 1, 42);
    }
    m1.run(&conv.code).unwrap();
    m2.run(&pipe.code).unwrap();
    assert_eq!(m1.memory(), m2.memory());
    assert!(m2.stats.loads < m1.stats.loads);
}

#[test]
fn predicted_savings_match_the_simulator() {
    use arrayflow_machine::CostModel;
    use arrayflow_opt::pipeline::predicted_cycle_savings;
    use arrayflow_workloads::{clipped_wavefront, fig5, smooth3};

    let cost = CostModel::default();
    for (name, p, ub) in [
        ("fig5", fig5(1000), 1000i64),
        ("smooth3", smooth3(1000), 1000),
        ("clipped_wavefront", clipped_wavefront(1000), 1000),
    ] {
        let analysis = analyze_loop(&p).unwrap();
        let alloc = allocate(&analysis, &PipelineConfig::default());
        if alloc.plan.ranges.is_empty() {
            continue;
        }
        let conv = compile(&p).unwrap();
        let pipe = compile_with(&p, &alloc.plan).unwrap();
        let mut m1 = Machine::new();
        let mut m2 = Machine::new();
        for (m, c) in [(&mut m1, &conv), (&mut m2, &pipe)] {
            for a in p.symbols.array_ids() {
                for k in -8..1100 {
                    m.set_mem(a, k, k % 23);
                }
            }
            for v in p.symbols.var_ids() {
                m.set_reg(c.scalar_regs[&v], 2);
            }
        }
        m1.run(&conv.code).unwrap();
        m2.run(&pipe.code).unwrap();
        let measured = m1.stats.cycles(&cost) as i64 - m2.stats.cycles(&cost) as i64;
        let predicted = predicted_cycle_savings(&alloc.plan, ub, &cost);
        let err = (measured - predicted).abs() as f64 / measured.abs().max(1) as f64;
        assert!(
            err < 0.10,
            "{name}: predicted {predicted}, measured {measured} ({:.1}% off)",
            err * 100.0
        );
    }
}
