//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms behind cloneable lock-free handles.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path is atomic-cheap.** A handle ([`Counter`], [`Gauge`],
//!    [`Histogram`]) is an `Arc` around plain atomics; incrementing or
//!    observing takes the same relaxed `fetch_add`s the hand-rolled
//!    counters it replaces used. The registry's lock is touched only at
//!    registration (startup) and snapshot (scrape) time.
//! 2. **Registration is idempotent.** Asking for an instrument that
//!    already exists under the same `(name, labels)` returns a clone of
//!    the existing handle, so two components can share one time series
//!    without coordinating. Re-registering under a different instrument
//!    kind is a programming error and panics with both names.
//! 3. **Snapshots are self-describing.** [`Registry::snapshot`] returns
//!    every instrument with its name, help text, labels and current
//!    value; [`MetricsSnapshot::render_prometheus`] renders the standard
//!    text exposition (cumulative `_bucket{le=...}` series, `_sum`,
//!    `_count`), so a scrape endpoint is one string away.
//!
//! Histograms use fixed upper bucket edges plus a final unbounded
//! bucket — the same shape as the service's request-latency histogram —
//! so bucket counts are monotone and mergeable across snapshots.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default upper edges for per-phase duration histograms, in
/// microseconds — one decade per bucket, the same shape as the service's
/// request-latency histogram. The final bucket is unbounded.
pub const PHASE_BUCKETS_US: [u64; 6] = [10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// A monotone counter handle. Cloning shares the underlying value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A standalone counter, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both ways (or ratchet up with
/// [`Gauge::set_max`], for high-water marks). Cloning shares the value.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A standalone gauge, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero under races is *not* guaranteed;
    /// callers pair `add`/`sub` symmetrically).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Ratchets the value up to at least `v` — a lock-free high-water
    /// mark.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    /// Strictly increasing upper bucket edges; the implicit final bucket
    /// is unbounded.
    edges: Box<[u64]>,
    /// One count per edge plus the unbounded bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram handle. Cloning shares the buckets.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("edges", &self.0.edges)
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl Histogram {
    /// A standalone histogram over `edges` (strictly increasing upper
    /// bounds; a final unbounded bucket is added automatically).
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing — a
    /// registration-time programming error.
    pub fn new(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Self(Arc::new(HistogramInner {
            edges: edges.into(),
            buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// The configured upper edges (without the unbounded bucket).
    pub fn edges(&self) -> &[u64] {
        &self.0.edges
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let i = self
            .0
            .edges
            .iter()
            .position(|&edge| value <= edge)
            .unwrap_or(self.0.edges.len());
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets and totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.0.edges.to_vec(),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time histogram copy: per-bucket (non-cumulative) counts,
/// the unbounded bucket last.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper edges, matching [`Histogram::edges`].
    pub edges: Vec<u64>,
    /// Per-bucket counts; `buckets.len() == edges.len() + 1`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Cumulative count of observations `<= edge`. `None` if `edge` is
    /// not one of the configured edges.
    pub fn cumulative_le(&self, edge: u64) -> Option<u64> {
        let i = self.edges.iter().position(|&e| e == edge)?;
        Some(self.buckets[..=i].iter().sum())
    }

    /// Total observations across all buckets (equals `count` once the
    /// histogram is quiescent).
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// The value part of one registered instrument, as captured by
/// [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotone counter.
    Counter(u64),
    /// A gauge.
    Gauge(u64),
    /// A fixed-bucket histogram.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The Prometheus `# TYPE` keyword for this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One registered instrument with its identity and current value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metric {
    /// Metric family name, e.g. `arrayflow_requests_total`.
    pub name: String,
    /// Help text, rendered into the exposition.
    pub help: String,
    /// Constant labels fixed at registration, e.g. `[("phase", "solve")]`.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: MetricValue,
}

/// A point-in-time capture of every registered instrument, in
/// registration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The captured instruments.
    pub metrics: Vec<Metric>,
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(
    prefix: &[(&str, &str)],
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
) -> String {
    let mut parts: Vec<String> = prefix
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(
        labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl MetricsSnapshot {
    /// The first metric matching `name` (any labels).
    pub fn find(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The metric matching `name` with the given label pairs.
    pub fn find_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        self.metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && labels
                    .iter()
                    .all(|(k, v)| m.labels.iter().any(|(mk, mv)| mk == k && mv == v))
        })
    }

    /// Renders the standard Prometheus text exposition (version 0.0.4):
    /// one `# HELP`/`# TYPE` header per family, cumulative
    /// `_bucket{le="..."}` series plus `_sum`/`_count` for histograms.
    /// Families are sorted by name; instances keep registration order.
    pub fn render_prometheus(&self) -> String {
        self.render_prometheus_with(&[])
    }

    /// Like [`MetricsSnapshot::render_prometheus`], but stamps `extra`
    /// label pairs (e.g. `node="a"`) onto every series, ahead of the
    /// instrument's own labels. This is how a cluster node's exposition
    /// stays distinguishable after a router merges the fleet's scrapes
    /// into one document.
    pub fn render_prometheus_with(&self, extra: &[(&str, &str)]) -> String {
        // Group by family name, preserving instance registration order
        // within each family.
        let mut families: BTreeMap<&str, Vec<&Metric>> = BTreeMap::new();
        for m in &self.metrics {
            families.entry(&m.name).or_default().push(m);
        }
        let mut out = String::new();
        for (name, metrics) in families {
            let first = metrics[0];
            let _ = writeln!(out, "# HELP {name} {}", first.help);
            let _ = writeln!(out, "# TYPE {name} {}", first.value.type_name());
            for m in metrics {
                match &m.value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                        let _ =
                            writeln!(out, "{name}{} {v}", render_labels(extra, &m.labels, None));
                    }
                    MetricValue::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, &edge) in h.edges.iter().enumerate() {
                            cumulative += h.buckets[i];
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels(extra, &m.labels, Some(("le", &edge.to_string())))
                            );
                        }
                        cumulative += h.buckets[h.edges.len()];
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            render_labels(extra, &m.labels, Some(("le", "+Inf")))
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(extra, &m.labels, None),
                            h.sum
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {cumulative}",
                            render_labels(extra, &m.labels, None)
                        );
                    }
                }
            }
        }
        out
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Registered {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// The instrument registry. Cloning shares the registry; handles stay
/// valid for the life of any clone.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Vec<Registered>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("instruments", &self.inner.lock().unwrap().len())
            .finish()
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        wrap: impl FnOnce(T) -> Instrument,
        unwrap: impl Fn(&Instrument) -> Option<&T>,
        fresh: impl FnOnce() -> T,
    ) -> T {
        let labels = owned_labels(labels);
        let mut reg = self.inner.lock().unwrap();
        if let Some(existing) = reg.iter().find(|r| r.name == name && r.labels == labels) {
            return unwrap(&existing.instrument)
                .unwrap_or_else(|| {
                    panic!(
                        "metric `{name}` already registered as a {}",
                        existing.instrument.kind()
                    )
                })
                .clone();
        }
        let handle = fresh();
        reg.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument: wrap(handle.clone()),
        });
        handle
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter with constant labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.register(
            name,
            help,
            labels,
            Instrument::Counter,
            |i| match i {
                Instrument::Counter(c) => Some(c),
                _ => None,
            },
            Counter::new,
        )
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge with constant labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.register(
            name,
            help,
            labels,
            Instrument::Gauge,
            |i| match i {
                Instrument::Gauge(g) => Some(g),
                _ => None,
            },
            Gauge::new,
        )
    }

    /// Registers (or retrieves) an unlabeled histogram over `edges`.
    pub fn histogram(&self, name: &str, help: &str, edges: &[u64]) -> Histogram {
        self.histogram_with(name, help, &[], edges)
    }

    /// Registers (or retrieves) a histogram with constant labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        edges: &[u64],
    ) -> Histogram {
        self.register(
            name,
            help,
            labels,
            Instrument::Histogram,
            |i| match i {
                Instrument::Histogram(h) => Some(h),
                _ => None,
            },
            || Histogram::new(edges),
        )
    }

    /// Captures every registered instrument, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.inner.lock().unwrap();
        MetricsSnapshot {
            metrics: reg
                .iter()
                .map(|r| Metric {
                    name: r.name.clone(),
                    help: r.help.clone(),
                    labels: r.labels.clone(),
                    value: match &r.instrument {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("g", "a gauge");
        g.set(10);
        g.add(5);
        g.sub(3);
        g.set_max(7); // below current: no change
        assert_eq!(g.get(), 12);
        g.set_max(40);
        assert_eq!(g.get(), 40);
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("shared_total", "x");
        let b = r.counter("shared_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.snapshot().metrics.len(), 1);
        // Distinct labels are distinct instruments.
        let c = r.counter_with("shared_total", "x", &[("k", "v")]);
        c.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.snapshot().metrics.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("twice", "x");
        r.gauge("twice", "x");
    }

    #[test]
    fn histogram_buckets_and_cumulative() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 2, 0, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1 + 10 + 11 + 100 + 5000);
        assert_eq!(s.cumulative_le(10), Some(2));
        assert_eq!(s.cumulative_le(100), Some(4));
        assert_eq!(s.cumulative_le(1000), Some(4));
        assert_eq!(s.cumulative_le(7), None);
        assert_eq!(s.total(), s.count);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        let c = r.counter("af_requests_total", "requests");
        c.add(3);
        let h = r.histogram_with("af_latency_us", "latency", &[("kind", "x")], &[100, 1000]);
        h.observe(50);
        h.observe(5000);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# HELP af_requests_total requests"), "{text}");
        assert!(text.contains("# TYPE af_requests_total counter"), "{text}");
        assert!(text.contains("af_requests_total 3"), "{text}");
        assert!(text.contains("# TYPE af_latency_us histogram"), "{text}");
        assert!(
            text.contains("af_latency_us_bucket{kind=\"x\",le=\"100\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("af_latency_us_bucket{kind=\"x\",le=\"1000\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("af_latency_us_bucket{kind=\"x\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("af_latency_us_sum{kind=\"x\"} 5050"),
            "{text}"
        );
        assert!(text.contains("af_latency_us_count{kind=\"x\"} 2"), "{text}");
    }

    #[test]
    fn extra_labels_stamp_every_series() {
        let r = Registry::new();
        r.counter("plain_total", "x").inc();
        let h = r.histogram_with("lat_us", "y", &[("kind", "a")], &[10]);
        h.observe(5);
        let text = r.snapshot().render_prometheus_with(&[("node", "n0")]);
        assert!(text.contains("plain_total{node=\"n0\"} 1"), "{text}");
        assert!(
            text.contains("lat_us_bucket{node=\"n0\",kind=\"a\",le=\"10\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_count{node=\"n0\",kind=\"a\"} 1"),
            "{text}"
        );
        // No extra labels: identical to the plain render.
        assert_eq!(
            r.snapshot().render_prometheus(),
            r.snapshot().render_prometheus_with(&[])
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("weird_total", "x", &[("q", "a\"b\\c\nd")])
            .inc();
        let text = r.snapshot().render_prometheus();
        assert!(text.contains(r#"q="a\"b\\c\nd""#), "{text}");
    }

    #[test]
    fn snapshot_find_helpers() {
        let r = Registry::new();
        r.counter_with("f_total", "x", &[("p", "a")]).add(1);
        r.counter_with("f_total", "x", &[("p", "b")]).add(2);
        let snap = r.snapshot();
        assert!(snap.find("f_total").is_some());
        let b = snap.find_with("f_total", &[("p", "b")]).unwrap();
        assert_eq!(b.value, MetricValue::Counter(2));
        assert!(snap.find_with("f_total", &[("p", "z")]).is_none());
    }
}
