//! Lightweight per-request tracing spans.
//!
//! A [`Trace`] is a per-request record of named phases (`decode`,
//! `queue_wait`, `parse`, `solve`, ...), each with a start offset and
//! duration in microseconds. Traces propagate *implicitly* through a
//! thread-local "current trace", so deep layers (the engine's solver
//! loop, the store's disk tier) can record spans without threading a
//! handle through every signature:
//!
//! * the request owner creates the trace ([`Trace::start`]) and installs
//!   it around the work with [`with_current`];
//! * any code on that thread calls [`span`] (or [`observed_span`] to
//!   also feed a latency [`Histogram`]) and gets a guard that records on
//!   drop;
//! * when no trace is installed, [`span`] is a near-no-op — one
//!   thread-local read — so instrumented code costs nothing on untraced
//!   paths.
//!
//! Traces cross *one* explicit thread hop: a queued request carries its
//! `Arc<Trace>` into the worker, which re-installs it. Spans recorded
//! from two threads interleave safely (the span list is behind a mutex;
//! recording is a few hundred nanoseconds, far below the microsecond
//! resolution of the spans themselves).

use std::cell::RefCell;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::Histogram;

/// One recorded phase of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Phase name (static so recording never allocates for the name).
    pub name: &'static str,
    /// Start offset from the trace's start, in microseconds.
    pub start_us: u64,
    /// Duration, in microseconds.
    pub dur_us: u64,
}

/// A per-request trace: an id, a start instant and the recorded spans.
#[derive(Debug)]
pub struct Trace {
    id: u64,
    start: Instant,
    spans: Mutex<Vec<Span>>,
}

impl Trace {
    /// Starts a trace with the given id (the caller allocates ids, e.g.
    /// from an atomic counter).
    pub fn start(id: u64) -> Arc<Trace> {
        Arc::new(Trace {
            id,
            start: Instant::now(),
            spans: Mutex::new(Vec::new()),
        })
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Microseconds since the trace started.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Records one span explicitly (for phases measured away from the
    /// guard API, e.g. queue wait measured between two threads).
    pub fn record(&self, name: &'static str, start_us: u64, dur_us: u64) {
        self.spans.lock().unwrap().push(Span {
            name,
            start_us,
            dur_us,
        });
    }

    /// Records a zero-duration marker at the current offset — a point
    /// event rather than a phase (e.g. `shed` when a cancelled job is
    /// dropped). Shows up in [`breakdown`](Self::breakdown) as
    /// `name=0`, placing the event on the request's timeline.
    pub fn mark(&self, name: &'static str) {
        self.record(name, self.elapsed_us(), 0);
    }

    /// A copy of the spans recorded so far, in recording order.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().unwrap().clone()
    }

    /// The spans as one `name=dur_us` line fragment, recording order,
    /// e.g. `decode=12 queue_wait=3401 parse=55 solve=210`. Used by the
    /// slow-request log.
    pub fn breakdown(&self) -> String {
        let spans = self.spans.lock().unwrap();
        let mut out = String::new();
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(s.name);
            out.push('=');
            out.push_str(&s.dur_us.to_string());
        }
        out
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Trace>>> = const { RefCell::new(None) };
}

/// Installs `trace` as the thread's current trace for the duration of
/// `f`, restoring the previous one afterwards (panic-safe via a guard).
pub fn with_current<R>(trace: &Arc<Trace>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<Trace>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let previous = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(trace)));
    let _restore = Restore(previous);
    f()
}

/// The thread's current trace, if one is installed.
pub fn current() -> Option<Arc<Trace>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// A guard that records a span (and optionally a histogram observation)
/// when dropped.
#[must_use = "the span is recorded when the guard drops"]
pub struct SpanGuard {
    name: &'static str,
    started: Instant,
    trace: Option<(Arc<Trace>, u64)>,
    histogram: Option<Histogram>,
}

impl SpanGuard {
    fn new(name: &'static str, histogram: Option<Histogram>) -> SpanGuard {
        let trace = current().map(|t| {
            let at = t.elapsed_us();
            (t, at)
        });
        SpanGuard {
            name,
            started: Instant::now(),
            trace,
            histogram,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_us = self.started.elapsed().as_micros() as u64;
        if let Some(h) = &self.histogram {
            h.observe(dur_us);
        }
        if let Some((trace, start_us)) = &self.trace {
            trace.record(self.name, *start_us, dur_us);
        }
    }
}

/// Opens a span against the current trace (no-op without one).
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::new(name, None)
}

/// Opens a span that also observes its duration into `histogram` — the
/// histogram is fed whether or not a trace is installed, so per-phase
/// metrics cover every request while span breakdowns cover traced ones.
pub fn observed_span(name: &'static str, histogram: &Histogram) -> SpanGuard {
    SpanGuard::new(name, Some(histogram.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_only_under_a_trace() {
        let trace = Trace::start(7);
        with_current(&trace, || {
            let _s = span("inner");
        });
        let _outside = span("outside"); // no current trace: dropped silently
        drop(_outside);
        let spans = trace.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(trace.id(), 7);
    }

    #[test]
    fn with_current_restores_previous() {
        let outer = Trace::start(1);
        let inner = Trace::start(2);
        with_current(&outer, || {
            assert_eq!(current().unwrap().id(), 1);
            with_current(&inner, || {
                assert_eq!(current().unwrap().id(), 2);
            });
            assert_eq!(current().unwrap().id(), 1);
        });
        assert!(current().is_none());
    }

    #[test]
    fn observed_span_feeds_histogram_without_trace() {
        let h = Histogram::new(&[1_000_000]);
        {
            let _s = observed_span("x", &h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn breakdown_renders_in_order() {
        let t = Trace::start(3);
        t.record("decode", 0, 12);
        t.record("queue_wait", 12, 340);
        t.record("solve", 352, 55);
        assert_eq!(t.breakdown(), "decode=12 queue_wait=340 solve=55");
    }

    #[test]
    fn cross_thread_recording_via_arc() {
        let t = Trace::start(9);
        let t2 = Arc::clone(&t);
        std::thread::spawn(move || {
            with_current(&t2, || {
                let _s = span("worker");
            });
        })
        .join()
        .unwrap();
        assert_eq!(t.spans().len(), 1);
    }
}
