#![warn(missing_docs)]
//! Zero-dependency observability for the arrayflow runtime.
//!
//! The paper's central claim is *practicality* — must-problems converge
//! in three passes, may-problems in two — and this crate is what makes
//! that claim measurable in a running service rather than a one-off
//! bench number. It provides two small, self-contained pieces:
//!
//! * a **metrics registry** ([`Registry`]) of named counters, gauges and
//!   fixed-bucket histograms behind cloneable atomic handles, with a
//!   structured [snapshot](Registry::snapshot) and a standard
//!   [Prometheus text exposition](MetricsSnapshot::render_prometheus);
//! * **tracing spans** ([`trace`]) with per-request trace ids that flow
//!   service → engine → solver → store via a thread-local current trace
//!   (plus one explicit hop across the request queue), recording
//!   per-phase timings for the slow-request log.
//!
//! Both are lock-light by design: the hot path is relaxed atomics, and
//! the registry's mutex is touched only at registration (startup) and
//! snapshot (scrape) time. Like the rest of the workspace, the crate has
//! zero external dependencies.
//!
//! ```
//! use arrayflow_obs::{trace, Registry};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("requests_total", "requests served");
//! let latency = registry.histogram("latency_us", "request latency", &[100, 1_000]);
//!
//! let t = trace::Trace::start(1);
//! trace::with_current(&t, || {
//!     let _span = trace::observed_span("handle", &latency);
//!     requests.inc();
//! });
//! assert_eq!(t.spans()[0].name, "handle");
//! assert!(registry.snapshot().render_prometheus().contains("requests_total 1"));
//! ```

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Metric, MetricValue, MetricsSnapshot, Registry,
    PHASE_BUCKETS_US,
};
pub use trace::{observed_span, span, with_current, Span, SpanGuard, Trace};
