//! Fuzz-style robustness tests for the DSL parser.
//!
//! The analysis service feeds untrusted wire bytes straight into
//! `parse_program_bytes`, so the parser must never panic — every
//! pathological input has to come back as a `ParseError`. These tests
//! hammer it with seeded random byte strings (raw bytes, token soup, and
//! mutated valid programs) and assert the process survives.

use arrayflow_ir::parse_program_bytes;

/// SplitMix64 — the same tiny seeded generator the workloads crate uses,
/// inlined here because `arrayflow-ir` sits below it in the crate graph.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn random_bytes_never_panic() {
    let mut rng = SplitMix64(0xa11ce);
    for _ in 0..2_000 {
        let len = rng.below(200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // The result does not matter — only that we get one.
        let _ = parse_program_bytes(&bytes);
    }
}

#[test]
fn random_token_soup_never_panics() {
    // Valid lexemes in random order exercise the parser (not just the
    // lexer) far more deeply than uniform bytes.
    const LEXEMES: &[&str] = &[
        "do",
        "end",
        "if",
        "then",
        "else",
        "i",
        "A",
        "B",
        "x",
        "UB",
        "1",
        "0",
        "42",
        "9223372036854775807",
        ":=",
        ";",
        ",",
        "(",
        ")",
        "[",
        "]",
        "+",
        "-",
        "*",
        "/",
        "==",
        "!=",
        "<",
        "<=",
        ">",
        ">=",
        "=",
        "--",
        "{",
        "}",
    ];
    let mut rng = SplitMix64(0xf00d);
    for _ in 0..2_000 {
        let len = rng.below(120);
        let mut src = String::new();
        for _ in 0..len {
            src.push_str(LEXEMES[rng.below(LEXEMES.len())]);
            src.push(' ');
        }
        let _ = parse_program_bytes(src.as_bytes());
    }
}

#[test]
fn mutated_valid_programs_never_panic() {
    let seed = b"do i = 1, 100 A[i+2] := A[i] * 2; if x < 3 then B[i] := A[i-1]; end end";
    let mut rng = SplitMix64(0xbeef);
    for _ in 0..2_000 {
        let mut bytes = seed.to_vec();
        for _ in 0..1 + rng.below(6) {
            let pos = rng.below(bytes.len());
            match rng.below(3) {
                0 => bytes[pos] = rng.next() as u8, // flip to anything
                1 => bytes[pos] = b"dix=,;[]()+-*/<>"[rng.below(16)], // flip to a near-miss
                _ => {
                    bytes.remove(pos);
                    if bytes.is_empty() {
                        bytes.push(b' ');
                    }
                }
            }
        }
        let _ = parse_program_bytes(&bytes);
    }
}

#[test]
fn huge_integer_literals_are_errors() {
    assert!(parse_program_bytes(b"do i = 1, 99999999999999999999 A[i] := 1; end").is_err());
}
