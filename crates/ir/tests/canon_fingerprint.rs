//! Fingerprint soundness: alpha-renamings collide, structural differences
//! do not.
//!
//! Property-style over a systematic grid of loop shapes (no external
//! property-testing dependency): for every base loop we check that every
//! pure renaming of its induction variable, scalars and arrays produces
//! the same fingerprint, and that every *structural* mutation — bounds,
//! subscript coefficients/offsets, constants, relational operators,
//! statement count, conditional nesting — produces a distinct one.

use arrayflow_ir::{fingerprint_program, parse_program, Fingerprint};

fn fp(src: &str) -> Fingerprint {
    let p = parse_program(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
    fingerprint_program(&p)
}

/// A loop template over the names it uses; instantiating it with different
/// name sets must not change the fingerprint.
fn template(iv: &str, a: &str, b: &str, x: &str, ub: i64, coef: i64, off: i64) -> String {
    format!(
        "do {iv} = 1, {ub}
           {a}[{coef}*{iv}+{off}] := {b}[{iv}] + {x};
           {b}[{iv}+1] := {a}[{iv}] * 2;
         end"
    )
}

#[test]
fn renaming_induction_variable_collides() {
    let base = fp(&template("i", "A", "B", "x", 100, 2, 3));
    for iv in ["j", "k", "ii", "idx"] {
        assert_eq!(
            base,
            fp(&template(iv, "A", "B", "x", 100, 2, 3)),
            "renaming the induction variable to {iv} must not change the fingerprint"
        );
    }
}

#[test]
fn renaming_arrays_and_scalars_collides() {
    let base = fp(&template("i", "A", "B", "x", 100, 2, 3));
    for (a, b, x) in [
        ("src", "dst", "y"),
        ("U", "V", "scale"),
        ("B", "A", "x"), // swapped names, same first-occurrence structure
    ] {
        assert_eq!(
            base,
            fp(&template("i", a, b, x, 100, 2, 3)),
            "renaming arrays/scalars to ({a}, {b}, {x}) must not change the fingerprint"
        );
    }
}

#[test]
fn renaming_symbolic_bound_collides() {
    let with = |n: &str| {
        format!(
            "do i = 1, {n}
               A[i+1] := A[i] + 1;
             end"
        )
    };
    let base = fp(&with("n"));
    for n in ["m", "len", "count"] {
        assert_eq!(base, fp(&with(n)), "symbolic bound {n} must collide with n");
    }
}

#[test]
fn structural_differences_do_not_collide() {
    let base = fp(&template("i", "A", "B", "x", 100, 2, 3));
    let mutants = [
        (
            "different upper bound",
            template("i", "A", "B", "x", 101, 2, 3),
        ),
        (
            "different subscript coefficient",
            template("i", "A", "B", "x", 100, 3, 3),
        ),
        (
            "different subscript offset",
            template("i", "A", "B", "x", 100, 2, 4),
        ),
        (
            "symbolic instead of constant bound",
            "do i = 1, n
               A[2*i+3] := B[i] + x;
               B[i+1] := A[i] * 2;
             end"
            .to_string(),
        ),
        (
            "one array where the base has two",
            template("i", "A", "A", "x", 100, 2, 3),
        ),
        (
            "constant instead of scalar operand",
            "do i = 1, 100
               A[2*i+3] := B[i] + 7;
               B[i+1] := A[i] * 2;
             end"
            .to_string(),
        ),
        (
            "extra statement",
            "do i = 1, 100
               A[2*i+3] := B[i] + x;
               B[i+1] := A[i] * 2;
               A[i] := B[i];
             end"
            .to_string(),
        ),
        (
            "statements reordered",
            "do i = 1, 100
               B[i+1] := A[i] * 2;
               A[2*i+3] := B[i] + x;
             end"
            .to_string(),
        ),
        (
            "second statement under a conditional",
            "do i = 1, 100
               A[2*i+3] := B[i] + x;
               if B[i] > 0 then
                 B[i+1] := A[i] * 2;
               end
             end"
            .to_string(),
        ),
    ];
    let mut fps = vec![base];
    for (what, src) in &mutants {
        let f = fp(src);
        assert_ne!(base, f, "{what} must change the fingerprint");
        fps.push(f);
    }
    // The mutants must also be pairwise distinct from each other.
    for i in 0..fps.len() {
        for j in (i + 1)..fps.len() {
            assert_ne!(fps[i], fps[j], "variants {i} and {j} collide");
        }
    }
}

#[test]
fn relational_operator_matters() {
    let with = |op: &str| {
        format!(
            "do i = 1, 50
               if A[i] {op} 0 then
                 A[i+1] := A[i] + 1;
               end
             end"
        )
    };
    let gt = fp(&with(">"));
    let le = fp(&with("<="));
    let eq = fp(&with("="));
    assert_ne!(gt, le);
    assert_ne!(gt, eq);
    assert_ne!(le, eq);
}

/// Grid sweep: for every shape in a small product space, the renamed twin
/// collides and every neighbouring shape differs. This is the property
/// `fingerprint(p) == fingerprint(q) <=> alpha_equivalent(p, q)` sampled
/// without an external property-testing framework.
#[test]
fn grid_property_rename_collides_neighbours_differ() {
    let mut seen: Vec<(i64, i64, i64, Fingerprint)> = Vec::new();
    for ub in [10, 11, 100] {
        for coef in [1, 2] {
            for off in [-1, 0, 2] {
                let original = fp(&template("i", "A", "B", "x", ub, coef, off));
                let renamed = fp(&template("q", "P", "Q", "t", ub, coef, off));
                assert_eq!(
                    original, renamed,
                    "rename must collide at ub={ub} coef={coef} off={off}"
                );
                for (u2, c2, o2, f2) in &seen {
                    assert_ne!(
                        original, *f2,
                        "({ub},{coef},{off}) collides with ({u2},{c2},{o2})"
                    );
                }
                seen.push((ub, coef, off, original));
            }
        }
    }
}
