#![cfg(feature = "proptest")]

//! Property: pretty-printing a program and re-parsing it yields a
//! structurally identical program (same statements, same evaluation
//! behaviour), for arbitrarily generated ASTs.

use proptest::prelude::*;

use arrayflow_ir::interp::run_with;
use arrayflow_ir::pretty::print_program;
use arrayflow_ir::stmt::{ArrayRef, Assign, Block, LValue, Loop, Stmt};
use arrayflow_ir::{parse_program, BinOp, Cond, Expr, Program, RelOp};

/// Generates an expression over scalars s0..s2, arrays A0..A1 and iv `i`,
/// with bounded depth.
fn arb_expr(depth: u32) -> BoxedStrategy<RawExpr> {
    let leaf = prop_oneof![
        (-9i64..=9).prop_map(RawExpr::Const),
        (0u8..3).prop_map(RawExpr::Scalar),
        Just(RawExpr::Iv),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0u8..4).prop_map(|(l, r, op)| RawExpr::Bin(
                op,
                Box::new(l),
                Box::new(r)
            )),
            (0u8..2, inner).prop_map(|(a, s)| RawExpr::Elem(a, Box::new(s))),
        ]
    })
    .boxed()
}

/// AST sketch independent of interned ids.
#[derive(Debug, Clone)]
enum RawExpr {
    Const(i64),
    Scalar(u8),
    Iv,
    Bin(u8, Box<RawExpr>, Box<RawExpr>),
    Elem(u8, Box<RawExpr>),
}

#[derive(Debug, Clone)]
enum RawStmt {
    AssignScalar(u8, RawExpr),
    AssignElem(u8, RawExpr, RawExpr),
    If(RawExpr, u8, RawExpr, Vec<RawStmt>, Vec<RawStmt>),
}

fn arb_stmt(depth: u32) -> BoxedStrategy<RawStmt> {
    let assign = prop_oneof![
        (0u8..3, arb_expr(2)).prop_map(|(v, e)| RawStmt::AssignScalar(v, e)),
        (0u8..2, arb_expr(2), arb_expr(2)).prop_map(|(a, s, e)| RawStmt::AssignElem(a, s, e)),
    ];
    if depth == 0 {
        return assign.boxed();
    }
    prop_oneof![
        4 => assign,
        1 => (
            arb_expr(1),
            0u8..6,
            arb_expr(1),
            prop::collection::vec(arb_stmt(depth - 1), 1..3),
            prop::collection::vec(arb_stmt(depth - 1), 0..2),
        )
            .prop_map(|(l, op, r, t, e)| RawStmt::If(l, op, r, t, e)),
    ]
    .boxed()
}

fn realize(raw: &[RawStmt]) -> Program {
    let mut p = Program::new();
    let iv = p.symbols.var("i");
    let scalars: Vec<_> = (0..3).map(|k| p.symbols.var(&format!("s{k}"))).collect();
    let arrays: Vec<_> = (0..2).map(|k| p.symbols.array(&format!("A{k}"))).collect();

    fn expr(
        raw: &RawExpr,
        iv: arrayflow_ir::VarId,
        scalars: &[arrayflow_ir::VarId],
        arrays: &[arrayflow_ir::ArrayId],
    ) -> Expr {
        match raw {
            RawExpr::Const(c) => Expr::Const(*c),
            RawExpr::Scalar(v) => Expr::Scalar(scalars[*v as usize]),
            RawExpr::Iv => Expr::Scalar(iv),
            RawExpr::Bin(op, l, r) => Expr::bin(
                match op {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::Mul,
                    _ => BinOp::Div,
                },
                expr(l, iv, scalars, arrays),
                expr(r, iv, scalars, arrays),
            ),
            RawExpr::Elem(a, s) => Expr::Elem(ArrayRef::new(
                arrays[*a as usize],
                expr(s, iv, scalars, arrays),
            )),
        }
    }

    fn stmts(
        raw: &[RawStmt],
        iv: arrayflow_ir::VarId,
        scalars: &[arrayflow_ir::VarId],
        arrays: &[arrayflow_ir::ArrayId],
    ) -> Block {
        raw.iter()
            .map(|s| match s {
                RawStmt::AssignScalar(v, e) => Stmt::Assign(Assign::new(
                    LValue::Scalar(scalars[*v as usize]),
                    expr(e, iv, scalars, arrays),
                )),
                RawStmt::AssignElem(a, sub, e) => Stmt::Assign(Assign::new(
                    LValue::Elem(ArrayRef::new(
                        arrays[*a as usize],
                        expr(sub, iv, scalars, arrays),
                    )),
                    expr(e, iv, scalars, arrays),
                )),
                RawStmt::If(l, op, r, t, e) => Stmt::If {
                    cond: Cond::new(
                        expr(l, iv, scalars, arrays),
                        match op {
                            0 => RelOp::Eq,
                            1 => RelOp::Ne,
                            2 => RelOp::Lt,
                            3 => RelOp::Le,
                            4 => RelOp::Gt,
                            _ => RelOp::Ge,
                        },
                        expr(r, iv, scalars, arrays),
                    ),
                    then_blk: stmts(t, iv, scalars, arrays),
                    else_blk: stmts(e, iv, scalars, arrays),
                },
            })
            .collect()
    }

    p.body = vec![Stmt::Do(Loop {
        iv,
        lower: 1.into(),
        upper: 12.into(),
        step: 1,
        body: stmts(raw, iv, &scalars, &arrays),
    })];
    p.renumber();
    p
}

/// Runs `p` and serializes the final state over a fixed universe of names,
/// so programs that intern different (unused) symbols still compare equal.
fn behaviour(p: &Program) -> Result<String, arrayflow_ir::InterpError> {
    let seed = |k: i64| (k * 7 + 1) % 31;
    let env = run_with(p, |e| {
        for a in p.symbols.array_ids() {
            for k in -200..200 {
                e.set_elem(a, vec![k], seed(k));
            }
        }
        for (idx, name) in ["i", "s0", "s1", "s2"].iter().enumerate() {
            if let Some(v) = p.symbols.lookup_var(name) {
                e.set_scalar(v, (idx as i64 % 4) - 1);
            }
        }
    })?;
    use std::fmt::Write;
    let mut out = String::new();
    for name in ["A0", "A1"] {
        for k in -200..200 {
            let v = match p.symbols.lookup_array(name) {
                Some(a) => env.elem(a, &[k]),
                None => seed(k),
            };
            let _ = write!(out, "{v},");
        }
        out.push(';');
    }
    for (idx, name) in ["i", "s0", "s1", "s2"].iter().enumerate() {
        // An un-interned symbol is unused: its final value is its seed.
        let v = p
            .symbols
            .lookup_var(name)
            .map_or((idx as i64 % 4) - 1, |s| env.scalar(s));
        let _ = write!(out, "{name}={v};");
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_print_is_stable(raw in prop::collection::vec(arb_stmt(2), 1..6)) {
        let p = realize(&raw);
        let once = print_program(&p);
        let reparsed = parse_program(&once)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{once}"));
        let twice = print_program(&reparsed);
        prop_assert_eq!(&once, &twice, "printing is not a fixpoint");
    }

    #[test]
    fn reparsed_program_behaves_identically(raw in prop::collection::vec(arb_stmt(2), 1..6)) {
        let p = realize(&raw);
        let reparsed = parse_program(&print_program(&p)).unwrap();
        // Division by zero may occur in either — but must occur in both.
        let b1 = behaviour(&p);
        let b2 = behaviour(&reparsed);
        prop_assert_eq!(b1, b2);
    }
}
