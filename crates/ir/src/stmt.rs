//! Statements, blocks, loops and programs.

use crate::expr::{Cond, Expr};
use crate::symbols::{ArrayId, SymbolTable, VarId};

/// Unique identifier of an assignment statement within a [`Program`].
///
/// Assigned in textual order by [`Program::renumber`]; optimization passes
/// use it to map analysis results back onto the AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

impl StmtId {
    /// Sentinel for statements that have not been numbered yet.
    pub const UNASSIGNED: StmtId = StmtId(u32::MAX);
}

/// A reference to an array element: `X[e₁, …, eₙ]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// The array being referenced.
    pub array: ArrayId,
    /// One subscript expression per dimension.
    pub subs: Vec<Expr>,
}

impl ArrayRef {
    /// Creates a rank-1 reference.
    pub fn new(array: ArrayId, sub: Expr) -> Self {
        Self {
            array,
            subs: vec![sub],
        }
    }

    /// Creates a multi-dimensional reference.
    pub fn multi(array: ArrayId, subs: Vec<Expr>) -> Self {
        Self { array, subs }
    }
}

/// The destination of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LValue {
    /// A scalar variable.
    Scalar(VarId),
    /// An array element (a *definition* of a subscripted variable).
    Elem(ArrayRef),
}

/// An assignment statement `lhs := rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// Stable identifier (see [`Program::renumber`]).
    pub id: StmtId,
    /// Destination.
    pub lhs: LValue,
    /// Source expression.
    pub rhs: Expr,
}

impl Assign {
    /// Creates an unnumbered assignment.
    pub fn new(lhs: LValue, rhs: Expr) -> Self {
        Self {
            id: StmtId::UNASSIGNED,
            lhs,
            rhs,
        }
    }
}

/// One bound of a `do` loop.
///
/// After [`crate::normalize()`], the lower bound of every loop is the constant
/// 1 and the step is 1, so the interesting payload is the upper bound, which
/// is either a compile-time constant or a symbolic expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopBound {
    /// Known at compile time.
    Const(i64),
    /// Arbitrary expression, evaluated on loop entry.
    Expr(Expr),
}

impl LoopBound {
    /// The bound as a compile-time constant, if it is one.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            LoopBound::Const(c) => Some(*c),
            LoopBound::Expr(Expr::Const(c)) => Some(*c),
            LoopBound::Expr(_) => None,
        }
    }

    /// The bound as an expression.
    pub fn to_expr(&self) -> Expr {
        match self {
            LoopBound::Const(c) => Expr::Const(*c),
            LoopBound::Expr(e) => e.clone(),
        }
    }
}

impl From<i64> for LoopBound {
    fn from(c: i64) -> Self {
        LoopBound::Const(c)
    }
}

impl From<Expr> for LoopBound {
    fn from(e: Expr) -> Self {
        LoopBound::Expr(e)
    }
}

/// A counted `do` loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Basic induction variable. The paper assumes no statement in the body
    /// assigns to it; the interpreter and analyses enforce this.
    pub iv: VarId,
    /// Lower bound (1 after normalization).
    pub lower: LoopBound,
    /// Upper bound `UB`.
    pub upper: LoopBound,
    /// Increment (1 after normalization).
    pub step: i64,
    /// Loop body.
    pub body: Block,
}

impl Loop {
    /// True if the loop has the normalized form `do i = 1, UB` with step 1.
    pub fn is_normalized(&self) -> bool {
        self.lower.as_const() == Some(1) && self.step == 1
    }

    /// The trip count if the bounds are compile-time constants.
    pub fn const_trip_count(&self) -> Option<i64> {
        let l = self.lower.as_const()?;
        let u = self.upper.as_const()?;
        if self.step == 0 {
            return None;
        }
        let span = u - l;
        let n = span.div_euclid(self.step) + 1;
        Some(n.max(0))
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `lhs := rhs;`
    Assign(Assign),
    /// `if cond then … [else …] end`
    If {
        /// Guard condition.
        cond: Cond,
        /// Then-branch.
        then_blk: Block,
        /// Else-branch (possibly empty).
        else_blk: Block,
    },
    /// A nested `do` loop.
    Do(Loop),
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// A whole program: a symbol table plus a top-level statement list.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Names and array metadata for every identifier in `body`.
    pub symbols: SymbolTable,
    /// Top-level statements (typically a single outermost loop, possibly
    /// preceded/followed by scalar setup code).
    pub body: Block,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns fresh sequential [`StmtId`]s to every assignment in textual
    /// order. Returns the number of assignments.
    pub fn renumber(&mut self) -> u32 {
        fn walk(block: &mut Block, next: &mut u32) {
            for stmt in block {
                match stmt {
                    Stmt::Assign(a) => {
                        a.id = StmtId(*next);
                        *next += 1;
                    }
                    Stmt::If {
                        then_blk, else_blk, ..
                    } => {
                        walk(then_blk, next);
                        walk(else_blk, next);
                    }
                    Stmt::Do(l) => walk(&mut l.body, next),
                }
            }
        }
        let mut next = 0;
        walk(&mut self.body, &mut next);
        next
    }

    /// If the program body is a single `do` loop, returns it.
    pub fn sole_loop(&self) -> Option<&Loop> {
        match self.body.as_slice() {
            [Stmt::Do(l)] => Some(l),
            _ => None,
        }
    }

    /// Mutable variant of [`Program::sole_loop`].
    pub fn sole_loop_mut(&mut self) -> Option<&mut Loop> {
        match self.body.as_mut_slice() {
            [Stmt::Do(l)] => Some(l),
            _ => None,
        }
    }

    /// Convenience: name of a scalar variable.
    pub fn name(&self, v: VarId) -> &str {
        self.symbols.var_name(v)
    }

    /// Convenience: name of an array.
    pub fn array_name(&self, a: ArrayId) -> &str {
        self.symbols.array_name(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn renumber_assigns_textual_order() {
        let mut p = Program::new();
        let i = p.symbols.var("i");
        let a = p.symbols.array("A");
        let mk = |k: i64| {
            Stmt::Assign(Assign::new(
                LValue::Elem(ArrayRef::new(a, Expr::Const(k))),
                Expr::Const(k),
            ))
        };
        p.body = vec![Stmt::Do(Loop {
            iv: i,
            lower: 1.into(),
            upper: 10.into(),
            step: 1,
            body: vec![
                mk(0),
                Stmt::If {
                    cond: Cond::new(Expr::Const(0), crate::expr::RelOp::Eq, Expr::Const(0)),
                    then_blk: vec![mk(1)],
                    else_blk: vec![mk(2)],
                },
                mk(3),
            ],
        })];
        assert_eq!(p.renumber(), 4);
        let l = p.sole_loop().unwrap();
        match (&l.body[0], &l.body[2]) {
            (Stmt::Assign(a0), Stmt::Assign(a3)) => {
                assert_eq!(a0.id, StmtId(0));
                assert_eq!(a3.id, StmtId(3));
            }
            _ => panic!("expected assigns"),
        }
    }

    #[test]
    fn trip_count() {
        let mut p = Program::new();
        let i = p.symbols.var("i");
        let l = Loop {
            iv: i,
            lower: 1.into(),
            upper: 10.into(),
            step: 1,
            body: vec![],
        };
        assert_eq!(l.const_trip_count(), Some(10));
        assert!(l.is_normalized());
        let l2 = Loop {
            iv: i,
            lower: 2.into(),
            upper: 11.into(),
            step: 3,
            body: vec![],
        };
        assert_eq!(l2.const_trip_count(), Some(4));
        assert!(!l2.is_normalized());
        let l3 = Loop {
            iv: i,
            lower: 5.into(),
            upper: 1.into(),
            step: 1,
            body: vec![],
        };
        assert_eq!(l3.const_trip_count(), Some(0));
    }
}
