//! Affine subscript extraction.
//!
//! The paper restricts array subscripts to affine functions `a·i + b` of the
//! analyzed loop's induction variable `i`, where `a` and `b` may involve
//! *symbolic constants* (outer induction variables, dimension sizes — §3.6).
//! [`AffineSub`] is that normal form: a pair of [`LinExpr`]s `(coef, rest)`
//! denoting `coef·i + rest` where neither part mentions `i` itself.

use std::fmt;

use crate::expr::{BinOp, Expr};
use crate::linexpr::LinExpr;
use crate::symbols::VarId;

/// An affine subscript `coef·i + rest` with respect to a distinguished
/// induction variable `i`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineSub {
    /// Coefficient of the induction variable. May be symbolic (e.g. the
    /// dimension size `N` after linearization) but never mentions `i`.
    pub coef: LinExpr,
    /// Remaining `i`-free part.
    pub rest: LinExpr,
}

impl AffineSub {
    /// The subscript `i` itself.
    pub fn identity() -> Self {
        Self {
            coef: LinExpr::constant(1),
            rest: LinExpr::zero(),
        }
    }

    /// A constant subscript.
    pub fn constant(c: i64) -> Self {
        Self {
            coef: LinExpr::zero(),
            rest: LinExpr::constant(c),
        }
    }

    /// `a·i + b` with integer coefficients.
    pub fn simple(a: i64, b: i64) -> Self {
        Self {
            coef: LinExpr::constant(a),
            rest: LinExpr::constant(b),
        }
    }

    /// True if the subscript does not depend on the induction variable.
    pub fn is_invariant(&self) -> bool {
        self.coef.is_zero()
    }

    /// Extracts the affine form of `expr` with respect to `iv`.
    ///
    /// Every scalar other than `iv` is treated as a symbolic constant
    /// (whether that treatment is *sound* — i.e. the scalar is not modified
    /// in the loop — is checked separately by the analyses). Returns `None`
    /// when the expression is not affine in `iv` (products of two
    /// `iv`-dependent factors, division, or nested array reads).
    pub fn from_expr(expr: &Expr, iv: VarId) -> Option<AffineSub> {
        match expr {
            Expr::Const(c) => Some(AffineSub::constant(*c)),
            Expr::Scalar(v) => {
                if *v == iv {
                    Some(AffineSub::identity())
                } else {
                    Some(AffineSub {
                        coef: LinExpr::zero(),
                        rest: LinExpr::symbol(*v),
                    })
                }
            }
            Expr::Elem(_) => None,
            Expr::Bin(op, l, r) => {
                let a = AffineSub::from_expr(l, iv)?;
                let b = AffineSub::from_expr(r, iv)?;
                match op {
                    BinOp::Add => Some(AffineSub {
                        coef: a.coef + b.coef,
                        rest: a.rest + b.rest,
                    }),
                    BinOp::Sub => Some(AffineSub {
                        coef: a.coef - b.coef,
                        rest: a.rest - b.rest,
                    }),
                    BinOp::Mul => {
                        // (c₁·i + r₁)(c₂·i + r₂): affine only when the i²
                        // term vanishes, and each cross product must stay
                        // linear (one factor a plain integer constant).
                        if !a.coef.is_zero() && !b.coef.is_zero() {
                            return None;
                        }
                        let coef = lin_add(lin_mul(&a.coef, &b.rest)?, lin_mul(&a.rest, &b.coef)?);
                        let rest = lin_mul(&a.rest, &b.rest)?;
                        Some(AffineSub { coef, rest })
                    }
                    BinOp::Div => None,
                }
            }
        }
    }

    /// Converts the affine form back to an expression over `iv`.
    pub fn to_expr(&self, iv: VarId) -> Expr {
        let coef = linexpr_to_expr(&self.coef);
        let rest = linexpr_to_expr(&self.rest);
        let scaled = match (&self.coef.as_constant(), &coef) {
            (Some(0), _) => None,
            (Some(1), _) => Some(Expr::Scalar(iv)),
            _ => Some(Expr::mul(coef, Expr::Scalar(iv))),
        };
        match (scaled, self.rest.is_zero()) {
            (None, _) => rest,
            (Some(s), true) => s,
            (Some(s), false) => Expr::add(s, rest),
        }
    }

    /// Renders the subscript as e.g. `2*i - 1` using a symbol namer.
    pub fn display_with<F>(&self, iv_name: &str, namer: F) -> String
    where
        F: Fn(VarId) -> String + Copy,
    {
        let mut out = String::new();
        use fmt::Write as _;
        if let Some(c) = self.coef.as_constant() {
            match c {
                0 => {}
                1 => out.push_str(iv_name),
                -1 => {
                    let _ = write!(out, "-{iv_name}");
                }
                _ => {
                    let _ = write!(out, "{c}*{iv_name}");
                }
            }
        } else {
            let _ = write!(out, "({})*{iv_name}", self.coef.display_with(namer));
        }
        if out.is_empty() {
            let _ = write!(out, "{}", self.rest.display_with(namer));
        } else if !self.rest.is_zero() {
            let txt = format!("{}", self.rest.display_with(namer));
            if let Some(stripped) = txt.strip_prefix('-') {
                let _ = write!(out, " - {stripped}");
            } else {
                let _ = write!(out, " + {txt}");
            }
        }
        out
    }
}

/// Linear-expression product, defined only when one side is a plain integer.
fn lin_mul(a: &LinExpr, b: &LinExpr) -> Option<LinExpr> {
    if let Some(k) = a.as_constant() {
        Some(b.scaled(k))
    } else {
        b.as_constant().map(|k| a.scaled(k))
    }
}

fn lin_add(a: LinExpr, b: LinExpr) -> LinExpr {
    a + b
}

/// Converts a [`LinExpr`] back into an [`Expr`] tree.
pub fn linexpr_to_expr(l: &LinExpr) -> Expr {
    let mut acc: Option<Expr> = None;
    for (s, c) in l.iter_terms() {
        let term = match c {
            1 => Expr::Scalar(s),
            _ => Expr::mul(Expr::Const(c), Expr::Scalar(s)),
        };
        acc = Some(match acc {
            None => term,
            Some(prev) => Expr::add(prev, term),
        });
    }
    let c = l.constant_part();
    match acc {
        None => Expr::Const(c),
        Some(e) if c == 0 => e,
        Some(e) if c > 0 => Expr::add(e, Expr::Const(c)),
        Some(e) => Expr::sub(e, Expr::Const(-c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::VarId;

    const I: VarId = VarId(0);
    const N: VarId = VarId(1);
    const J: VarId = VarId(2);

    fn parse(e: &Expr) -> Option<AffineSub> {
        AffineSub::from_expr(e, I)
    }

    #[test]
    fn plain_forms() {
        assert_eq!(parse(&Expr::Const(7)), Some(AffineSub::simple(0, 7)));
        assert_eq!(parse(&Expr::Scalar(I)), Some(AffineSub::simple(1, 0)));
        let e = Expr::add(Expr::mul(Expr::Const(2), Expr::Scalar(I)), Expr::Const(-3));
        assert_eq!(parse(&e), Some(AffineSub::simple(2, -3)));
    }

    #[test]
    fn symbolic_offset() {
        // i + N + 1
        let e = Expr::add(Expr::Scalar(I), Expr::add(Expr::Scalar(N), Expr::Const(1)));
        let a = parse(&e).unwrap();
        assert_eq!(a.coef.as_constant(), Some(1));
        assert_eq!(a.rest.coeff(N), 1);
        assert_eq!(a.rest.constant_part(), 1);
    }

    #[test]
    fn symbolic_coefficient() {
        // N*i + j  (linearized 2-D subscript)
        let e = Expr::add(Expr::mul(Expr::Scalar(N), Expr::Scalar(I)), Expr::Scalar(J));
        let a = parse(&e).unwrap();
        assert!(a.coef.as_constant().is_none());
        assert_eq!(a.coef.coeff(N), 1);
        assert_eq!(a.rest.coeff(J), 1);
    }

    #[test]
    fn quadratic_is_rejected() {
        let e = Expr::mul(Expr::Scalar(I), Expr::Scalar(I));
        assert_eq!(parse(&e), None);
        // N*j is also rejected: product of two symbols is not linear.
        let e2 = Expr::mul(Expr::Scalar(N), Expr::Scalar(J));
        assert_eq!(parse(&e2), None);
    }

    #[test]
    fn division_is_rejected() {
        let e = Expr::bin(BinOp::Div, Expr::Scalar(I), Expr::Const(2));
        assert_eq!(parse(&e), None);
    }

    #[test]
    fn roundtrip_to_expr() {
        let a = AffineSub::simple(3, -2);
        let e = a.to_expr(I);
        assert_eq!(parse(&e), Some(a));
    }

    #[test]
    fn display() {
        let a = AffineSub::simple(2, -1);
        assert_eq!(a.display_with("i", |_| unreachable!()), "2*i - 1");
        let b = AffineSub::simple(1, 0);
        assert_eq!(b.display_with("i", |_| unreachable!()), "i");
        let c = AffineSub::simple(0, 4);
        assert_eq!(c.display_with("i", |_| unreachable!()), "4");
    }
}
