//! Programmatic construction of loops.
//!
//! [`LoopBuilder`] offers an ergonomic alternative to the text DSL when
//! generating workloads or writing tests: it owns a symbol table, interns
//! names on the fly, and produces a numbered [`Program`].
//!
//! ```
//! use arrayflow_ir::LoopBuilder;
//!
//! let mut b = LoopBuilder::new("i", 1000);
//! // A[i+2] := A[i] + x;
//! let a_def = b.array_ref("A", 1, 2);
//! let a_use = b.array_ref("A", 1, 0);
//! let x = b.scalar("x");
//! let rhs = b.add(a_use.into(), x);
//! b.assign_elem(a_def, rhs);
//! let program = b.finish();
//! assert!(program.sole_loop().is_some());
//! ```

use crate::expr::{BinOp, Cond, Expr, RelOp};
use crate::stmt::{ArrayRef, Assign, Block, LValue, Loop, LoopBound, Program, Stmt};
use crate::symbols::VarId;

/// Builder for a program whose body is a single (possibly nested) `do` loop.
#[derive(Debug)]
pub struct LoopBuilder {
    program: Program,
    iv: VarId,
    upper: LoopBound,
    /// Stack of open blocks: the innermost is where statements land.
    stack: Vec<Frame>,
}

#[derive(Debug)]
enum Frame {
    Body(Block),
    If {
        cond: Cond,
        then_blk: Block,
        else_blk: Option<Block>,
    },
    Do {
        iv: VarId,
        lower: LoopBound,
        upper: LoopBound,
        step: i64,
        body: Block,
    },
}

impl LoopBuilder {
    /// Starts building `do <iv> = 1, <ub>`.
    pub fn new(iv: &str, ub: i64) -> Self {
        let mut program = Program::new();
        let iv = program.symbols.var(iv);
        Self {
            program,
            iv,
            upper: LoopBound::Const(ub),
            stack: vec![Frame::Body(Vec::new())],
        }
    }

    /// Starts building `do <iv> = 1, <ub>` with a symbolic upper bound.
    pub fn with_symbolic_ub(iv: &str, ub: &str) -> Self {
        let mut program = Program::new();
        let iv_id = program.symbols.var(iv);
        let ub_id = program.symbols.var(ub);
        Self {
            program,
            iv: iv_id,
            upper: LoopBound::Expr(Expr::Scalar(ub_id)),
            stack: vec![Frame::Body(Vec::new())],
        }
    }

    /// The induction variable of the outermost loop under construction.
    pub fn iv(&self) -> VarId {
        self.iv
    }

    /// Interns a scalar and returns a read of it.
    pub fn scalar(&mut self, name: &str) -> Expr {
        Expr::Scalar(self.program.symbols.var(name))
    }

    /// Interns a scalar and returns its id.
    pub fn var(&mut self, name: &str) -> VarId {
        self.program.symbols.var(name)
    }

    /// Builds the rank-1 reference `name[a*iv + b]` for the *innermost* open
    /// loop's induction variable.
    pub fn array_ref(&mut self, name: &str, a: i64, b: i64) -> ArrayRef {
        let iv = self.current_iv();
        let id = self.program.symbols.array(name);
        let base = match a {
            0 => Expr::Const(b),
            1 if b == 0 => Expr::Scalar(iv),
            1 => Expr::add(Expr::Scalar(iv), Expr::Const(b)),
            _ if b == 0 => Expr::mul(Expr::Const(a), Expr::Scalar(iv)),
            _ => Expr::add(Expr::mul(Expr::Const(a), Expr::Scalar(iv)), Expr::Const(b)),
        };
        ArrayRef::new(id, base)
    }

    /// Builds a reference with an arbitrary subscript expression.
    pub fn array_ref_expr(&mut self, name: &str, sub: Expr) -> ArrayRef {
        let id = self.program.symbols.array(name);
        ArrayRef::new(id, sub)
    }

    /// Builds a multi-dimensional reference.
    pub fn array_ref_multi(&mut self, name: &str, subs: Vec<Expr>) -> ArrayRef {
        let rank = subs.len();
        let id = self
            .program
            .symbols
            .array_with(name, rank, vec![None; rank]);
        ArrayRef::multi(id, subs)
    }

    /// `l + r`
    pub fn add(&self, l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Add, l, r)
    }

    /// `l * r`
    pub fn mul(&self, l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Mul, l, r)
    }

    /// Appends `lhs := rhs;` with a subscripted destination.
    pub fn assign_elem(&mut self, lhs: ArrayRef, rhs: Expr) -> &mut Self {
        self.push_stmt(Stmt::Assign(Assign::new(LValue::Elem(lhs), rhs)));
        self
    }

    /// Appends `scalar := rhs;`.
    pub fn assign_scalar(&mut self, name: &str, rhs: Expr) -> &mut Self {
        let v = self.program.symbols.var(name);
        self.push_stmt(Stmt::Assign(Assign::new(LValue::Scalar(v), rhs)));
        self
    }

    /// Opens `if lhs op rhs then …`; close with [`LoopBuilder::end_if`] (or
    /// [`LoopBuilder::begin_else`] first).
    pub fn begin_if(&mut self, lhs: Expr, op: RelOp, rhs: Expr) -> &mut Self {
        self.stack.push(Frame::If {
            cond: Cond::new(lhs, op, rhs),
            then_blk: Vec::new(),
            else_blk: None,
        });
        self
    }

    /// Switches from the then-branch to the else-branch.
    ///
    /// # Panics
    ///
    /// Panics if no `if` is open or an else-branch was already started.
    pub fn begin_else(&mut self) -> &mut Self {
        match self.stack.last_mut() {
            Some(Frame::If { else_blk, .. }) if else_blk.is_none() => {
                *else_blk = Some(Vec::new());
            }
            _ => panic!("begin_else without matching begin_if"),
        }
        self
    }

    /// Closes the innermost open `if`.
    ///
    /// # Panics
    ///
    /// Panics if no `if` is open.
    pub fn end_if(&mut self) -> &mut Self {
        match self.stack.pop() {
            Some(Frame::If {
                cond,
                then_blk,
                else_blk,
            }) => {
                self.push_stmt(Stmt::If {
                    cond,
                    then_blk,
                    else_blk: else_blk.unwrap_or_default(),
                });
            }
            _ => panic!("end_if without matching begin_if"),
        }
        self
    }

    /// Opens a nested `do <iv> = 1, <ub>`; close with [`LoopBuilder::end_do`].
    pub fn begin_do(&mut self, iv: &str, ub: i64) -> &mut Self {
        let iv = self.program.symbols.var(iv);
        self.stack.push(Frame::Do {
            iv,
            lower: LoopBound::Const(1),
            upper: LoopBound::Const(ub),
            step: 1,
            body: Vec::new(),
        });
        self
    }

    /// Closes the innermost open nested loop.
    ///
    /// # Panics
    ///
    /// Panics if no nested loop is open.
    pub fn end_do(&mut self) -> &mut Self {
        match self.stack.pop() {
            Some(Frame::Do {
                iv,
                lower,
                upper,
                step,
                body,
            }) => {
                self.push_stmt(Stmt::Do(Loop {
                    iv,
                    lower,
                    upper,
                    step,
                    body,
                }));
            }
            _ => panic!("end_do without matching begin_do"),
        }
        self
    }

    fn current_iv(&self) -> VarId {
        for frame in self.stack.iter().rev() {
            if let Frame::Do { iv, .. } = frame {
                return *iv;
            }
        }
        self.iv
    }

    fn push_stmt(&mut self, stmt: Stmt) {
        match self.stack.last_mut().expect("builder stack never empty") {
            Frame::Body(b) => b.push(stmt),
            Frame::If {
                then_blk, else_blk, ..
            } => match else_blk {
                Some(e) => e.push(stmt),
                None => then_blk.push(stmt),
            },
            Frame::Do { body, .. } => body.push(stmt),
        }
    }

    /// Finishes construction, wraps the accumulated body in the outer loop,
    /// numbers all statements and returns the program.
    ///
    /// # Panics
    ///
    /// Panics if an `if` or nested `do` is still open.
    pub fn finish(mut self) -> Program {
        let body = match self.stack.pop() {
            Some(Frame::Body(b)) if self.stack.is_empty() => b,
            _ => panic!("finish with unclosed if/do"),
        };
        self.program.body = vec![Stmt::Do(Loop {
            iv: self.iv,
            lower: LoopBound::Const(1),
            upper: self.upper,
            step: 1,
            body,
        })];
        self.program.renumber();
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::print_program;

    #[test]
    fn builds_paper_fig1() {
        let mut b = LoopBuilder::with_symbolic_ub("i", "UB");
        let c2 = b.array_ref("C", 1, 2);
        let c0 = b.array_ref("C", 1, 0);
        let rhs = b.mul(c0.clone().into(), Expr::Const(2));
        b.assign_elem(c2, rhs);
        let b2i = b.array_ref("B", 2, 0);
        let x = b.scalar("x");
        let rhs = b.add(c0.clone().into(), x);
        b.assign_elem(b2i, rhs);
        b.begin_if(c0.clone().into(), RelOp::Eq, Expr::Const(0));
        let cdef = b.array_ref("C", 1, 0);
        let bm1 = b.array_ref("B", 1, -1);
        b.assign_elem(cdef, bm1.into());
        b.end_if();
        let bi = b.array_ref("B", 1, 0);
        let c1 = b.array_ref("C", 1, 1);
        b.assign_elem(bi, c1.into());
        let p = b.finish();
        let txt = print_program(&p);
        assert!(txt.contains("C[i + 2] := C[i] * 2;"), "{txt}");
        assert!(txt.contains("if C[i] == 0 then"), "{txt}");
    }

    #[test]
    fn nested_loop_uses_inner_iv() {
        let mut b = LoopBuilder::new("j", 10);
        b.begin_do("i", 20);
        let x = b.array_ref("X", 1, 1); // should use `i`
        b.assign_elem(x, Expr::Const(0));
        b.end_do();
        let p = b.finish();
        let txt = print_program(&p);
        assert!(txt.contains("X[i + 1] := 0;"), "{txt}");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_rejects_open_if() {
        let mut b = LoopBuilder::new("i", 10);
        b.begin_if(Expr::Const(0), RelOp::Eq, Expr::Const(0));
        let _ = b.finish();
    }

    #[test]
    fn else_branch_receives_statements() {
        let mut b = LoopBuilder::new("i", 10);
        b.begin_if(Expr::Const(1), RelOp::Eq, Expr::Const(1));
        let a = b.array_ref("A", 1, 0);
        b.assign_elem(a, Expr::Const(1));
        b.begin_else();
        let a2 = b.array_ref("A", 1, 0);
        b.assign_elem(a2, Expr::Const(2));
        b.end_if();
        let p = b.finish();
        let txt = print_program(&p);
        assert!(txt.contains("else"), "{txt}");
    }
}
