//! Expressions and conditions.

use crate::stmt::ArrayRef;
use crate::symbols::VarId;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Truncating integer division.
    Div,
}

/// Relational operators appearing in `if` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl RelOp {
    /// Evaluates the relation on two integers.
    pub fn eval(self, l: i64, r: i64) -> bool {
        match self {
            RelOp::Eq => l == r,
            RelOp::Ne => l != r,
            RelOp::Lt => l < r,
            RelOp::Le => l <= r,
            RelOp::Gt => l > r,
            RelOp::Ge => l >= r,
        }
    }
}

/// An integer-valued expression.
///
/// Array *uses* appear as [`Expr::Elem`]; array *definitions* appear as
/// [`crate::LValue::Elem`] on the left-hand side of assignments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Read of a scalar variable (possibly a loop induction variable).
    Scalar(VarId),
    /// Read of an array element (a *use* of a subscripted variable).
    Elem(ArrayRef),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // add/sub/mul are AST constructors, not arithmetic on Expr values
impl Expr {
    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    /// `l + r`
    pub fn add(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Add, l, r)
    }

    /// `l - r`
    pub fn sub(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Sub, l, r)
    }

    /// `l * r`
    pub fn mul(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Mul, l, r)
    }

    /// Substitutes `replacement` for every read of scalar `v`.
    pub fn substitute_scalar(&self, v: VarId, replacement: &Expr) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Scalar(s) => {
                if *s == v {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Elem(r) => Expr::Elem(ArrayRef {
                array: r.array,
                subs: r
                    .subs
                    .iter()
                    .map(|e| e.substitute_scalar(v, replacement))
                    .collect(),
            }),
            Expr::Bin(op, l, r) => Expr::bin(
                *op,
                l.substitute_scalar(v, replacement),
                r.substitute_scalar(v, replacement),
            ),
        }
    }

    /// True if the expression reads scalar `v` anywhere (including inside
    /// subscripts).
    pub fn reads_scalar(&self, v: VarId) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Scalar(s) => *s == v,
            Expr::Elem(r) => r.subs.iter().any(|e| e.reads_scalar(v)),
            Expr::Bin(_, l, r) => l.reads_scalar(v) || r.reads_scalar(v),
        }
    }
}

impl From<i64> for Expr {
    fn from(c: i64) -> Self {
        Expr::Const(c)
    }
}

impl From<VarId> for Expr {
    fn from(v: VarId) -> Self {
        Expr::Scalar(v)
    }
}

impl From<ArrayRef> for Expr {
    fn from(r: ArrayRef) -> Self {
        Expr::Elem(r)
    }
}

/// A relational condition `lhs op rhs` guarding an `if`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cond {
    /// Left operand.
    pub lhs: Expr,
    /// Relation.
    pub op: RelOp,
    /// Right operand.
    pub rhs: Expr,
}

impl Cond {
    /// Creates a condition.
    pub fn new(lhs: Expr, op: RelOp, rhs: Expr) -> Self {
        Self { lhs, op, rhs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::VarId;

    #[test]
    fn relop_eval_covers_all_cases() {
        assert!(RelOp::Eq.eval(1, 1));
        assert!(RelOp::Ne.eval(1, 2));
        assert!(RelOp::Lt.eval(1, 2));
        assert!(RelOp::Le.eval(2, 2));
        assert!(RelOp::Gt.eval(3, 2));
        assert!(RelOp::Ge.eval(2, 2));
        assert!(!RelOp::Lt.eval(2, 2));
    }

    #[test]
    fn substitute_scalar_rewrites_subscripts() {
        let i = VarId(0);
        let j = VarId(1);
        let a = crate::stmt::ArrayRef {
            array: crate::symbols::ArrayId(0),
            subs: vec![Expr::add(Expr::Scalar(i), Expr::Const(1))],
        };
        let e = Expr::add(Expr::Elem(a), Expr::Scalar(i));
        let out = e.substitute_scalar(i, &Expr::mul(Expr::Const(2), Expr::Scalar(j)));
        assert!(!out.reads_scalar(i));
        assert!(out.reads_scalar(j));
    }
}
