//! Non-basic induction variable removal.
//!
//! The paper assumes (§1) that "non-basic induction variables have been
//! identified and removed" before analysis, citing the classical technique
//! \[ASU86\]. This pass supplies that phase: a scalar `t` that is
//!
//! * initialized to a loop-invariant value `e₀` immediately before the
//!   loop, and
//! * updated exactly once per iteration, unconditionally and at the top
//!   level of the body, by `t := t + c` / `t := t − c` / `t := c + t`
//!   with a constant `c`, and
//! * never otherwise assigned inside the loop,
//!
//! is an induction variable with value `e₀ + (i−1)·c` before its update and
//! `e₀ + i·c` after it (in iteration `i` of a normalized loop). The pass
//! substitutes those closed forms for every read of `t` in the body,
//! deletes the update, and assigns the final value after the loop so later
//! code still sees it.

use crate::expr::{BinOp, Expr};
use crate::stmt::{Assign, Block, LValue, Program, Stmt};
use crate::symbols::VarId;
use crate::visit::modified_scalars;

/// Result of [`remove_induction_variables`].
#[derive(Debug, Clone, Default)]
pub struct IndVarRemoval {
    /// Variables rewritten into affine functions of the loop IV.
    pub removed: Vec<VarId>,
}

/// Detects and removes non-basic induction variables from every normalized
/// top-level loop of the program (in place). Returns the rewritten
/// variables.
pub fn remove_induction_variables(program: &mut Program) -> IndVarRemoval {
    let mut result = IndVarRemoval::default();
    let mut body = std::mem::take(&mut program.body);
    // Walk top-level statements; track the most recent scalar assignments
    // (candidate initializations) preceding each loop.
    let mut new_body: Vec<Stmt> = Vec::new();
    for stmt in body.drain(..) {
        match stmt {
            Stmt::Do(mut l) if l.is_normalized() => {
                let removed = rewrite_loop(&mut l, &new_body);
                let mut post = Vec::new();
                for (var, final_value) in removed {
                    result.removed.push(var);
                    post.push(Stmt::Assign(Assign::new(LValue::Scalar(var), final_value)));
                }
                new_body.push(Stmt::Do(l));
                new_body.extend(post);
            }
            other => new_body.push(other),
        }
    }
    program.body = new_body;
    program.renumber();
    result
}

/// The update shape `t := t ± c`.
fn update_of(a: &Assign, t: VarId) -> Option<i64> {
    match &a.rhs {
        Expr::Bin(BinOp::Add, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Scalar(v), Expr::Const(c)) if *v == t => Some(*c),
            (Expr::Const(c), Expr::Scalar(v)) if *v == t => Some(*c),
            _ => None,
        },
        Expr::Bin(BinOp::Sub, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Scalar(v), Expr::Const(c)) if *v == t => Some(-*c),
            _ => None,
        },
        _ => None,
    }
}

/// Attempts the rewrite for every candidate in one loop. Returns the
/// `(variable, final value)` pairs that were removed.
fn rewrite_loop(l: &mut crate::stmt::Loop, preceding: &[Stmt]) -> Vec<(VarId, Expr)> {
    // Candidates: top-level updates `t := t ± c` where t is assigned
    // exactly once in the whole body.
    let modified = modified_scalars(&l.body);
    let mut removed = Vec::new();
    let mut rejected: std::collections::HashSet<VarId> = Default::default();
    loop {
        let mut candidate: Option<(usize, VarId, i64)> = None;
        for (pos, stmt) in l.body.iter().enumerate() {
            if let Stmt::Assign(a) = stmt {
                if let LValue::Scalar(t) = a.lhs {
                    if t == l.iv || rejected.contains(&t) {
                        continue;
                    }
                    if let Some(c) = update_of(a, t) {
                        if assign_count(&l.body, t) == 1 {
                            candidate = Some((pos, t, c));
                            break;
                        }
                    }
                }
            }
        }
        let Some((pos, t, c)) = candidate else { break };

        // Initialization: the last preceding top-level `t := e₀` with a
        // loop-invariant e₀ (no reads of variables the loop modifies, no
        // array reads, and not of t itself).
        let init = preceding.iter().rev().find_map(|s| match s {
            Stmt::Assign(a) if a.lhs == LValue::Scalar(t) => Some(a.rhs.clone()),
            _ => None,
        });
        let Some(e0) = init else {
            rejected.insert(t);
            continue;
        };
        let invariant = !e0.reads_scalar(t)
            && modified.iter().all(|&m| !e0.reads_scalar(m))
            && !has_array_read(&e0);
        if !invariant {
            rejected.insert(t);
            continue;
        }

        // Closed forms: before the update t = e₀ + (i−1)·c, after it
        // t = e₀ + i·c.
        let scaled = |k: Expr| {
            if c == 1 {
                k
            } else {
                Expr::mul(k, Expr::Const(c))
            }
        };
        let before = Expr::add(
            e0.clone(),
            scaled(Expr::sub(Expr::Scalar(l.iv), Expr::Const(1))),
        );
        let after = Expr::add(e0.clone(), scaled(Expr::Scalar(l.iv)));

        // Substitute: statements before `pos` (and the update's own rhs)
        // see `before`; statements after see `after`. Conditional blocks
        // are fully before or fully after the top-level update, so the
        // split is well-defined.
        for (k, stmt) in l.body.iter_mut().enumerate() {
            if k == pos {
                continue;
            }
            let replacement = if k < pos { &before } else { &after };
            substitute_stmt(stmt, t, replacement);
        }
        l.body.remove(pos);

        // Final value after UB iterations: e₀ + UB·c.
        let final_value = Expr::add(e0, scaled(l.upper.to_expr()));
        removed.push((t, final_value));
    }
    removed
}

fn assign_count(block: &Block, t: VarId) -> usize {
    let mut n = 0;
    crate::visit::for_each_assign(block, &mut |a| {
        if a.lhs == LValue::Scalar(t) {
            n += 1;
        }
    });
    n
}

fn has_array_read(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Scalar(_) => false,
        Expr::Elem(_) => true,
        Expr::Bin(_, l, r) => has_array_read(l) || has_array_read(r),
    }
}

fn substitute_stmt(stmt: &mut Stmt, t: VarId, replacement: &Expr) {
    match stmt {
        Stmt::Assign(a) => {
            a.rhs = a.rhs.substitute_scalar(t, replacement);
            if let LValue::Elem(r) = &mut a.lhs {
                for s in &mut r.subs {
                    *s = s.substitute_scalar(t, replacement);
                }
            }
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            cond.lhs = cond.lhs.substitute_scalar(t, replacement);
            cond.rhs = cond.rhs.substitute_scalar(t, replacement);
            for s in then_blk.iter_mut().chain(else_blk.iter_mut()) {
                substitute_stmt(s, t, replacement);
            }
        }
        Stmt::Do(inner) => {
            if let crate::stmt::LoopBound::Expr(e) = &mut inner.lower {
                *e = e.substitute_scalar(t, replacement);
            }
            if let crate::stmt::LoopBound::Expr(e) = &mut inner.upper {
                *e = e.substitute_scalar(t, replacement);
            }
            for s in &mut inner.body {
                substitute_stmt(s, t, replacement);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_with;
    use crate::parser::parse_program;

    fn assert_equivalent_and_removed(src: &str, expect_removed: usize) -> Program {
        let orig = parse_program(src).unwrap();
        let mut opt = orig.clone();
        let r = remove_induction_variables(&mut opt);
        assert_eq!(r.removed.len(), expect_removed, "{src}");
        fn seed(p: &Program, e: &mut crate::Env) {
            for a in p.symbols.array_ids() {
                for k in -100..400 {
                    e.set_elem(a, vec![k], k * 3 - 1);
                }
            }
        }
        let e1 = run_with(&orig, |e| seed(&orig, e)).unwrap();
        let e2 = run_with(&opt, |e| seed(&opt, e)).unwrap();
        assert_eq!(e1.array_state(), e2.array_state(), "{src}");
        // Post-loop scalar values survive too.
        for v in orig.symbols.var_ids() {
            assert_eq!(e1.scalar(v), e2.scalar(v), "{src}: scalar {v}");
        }
        opt
    }

    #[test]
    fn removes_simple_strided_index() {
        let opt = assert_equivalent_and_removed(
            "t := 0;
             do i = 1, 50
               t := t + 2;
               A[t] := A[t - 2] + 1;
             end",
            1,
        );
        // The subscript is now affine in i (2i), so the analysis can see it.
        let a = super::analyses_probe::first_def_sub(&opt);
        assert_eq!(a, Some(crate::AffineSub::simple(2, 0)));
    }

    #[test]
    fn pre_update_uses_get_the_lagged_form() {
        assert_equivalent_and_removed(
            "t := 5;
             do i = 1, 30
               B[t] := i;     -- reads t = 5 + (i-1)*3
               t := t + 3;
               C[t] := i;     -- reads t = 5 + i*3
             end",
            1,
        );
    }

    #[test]
    fn conditional_update_is_not_an_induction_variable() {
        assert_equivalent_and_removed(
            "t := 0;
             do i = 1, 30
               if A[i] > 0 then t := t + 1; end
               B[t] := i;
             end",
            0,
        );
    }

    #[test]
    fn double_update_is_rejected() {
        assert_equivalent_and_removed(
            "t := 0;
             do i = 1, 30
               t := t + 1;
               t := t + 2;
               B[t] := i;
             end",
            0,
        );
    }

    #[test]
    fn missing_initialization_is_rejected() {
        assert_equivalent_and_removed(
            "do i = 1, 30
               t := t + 1;
               B[t] := i;
             end",
            0,
        );
    }

    #[test]
    fn variant_initializer_is_rejected() {
        assert_equivalent_and_removed(
            "t := A[1];
             do i = 1, 30
               t := t + 1;
               B[t] := i;
             end",
            0,
        );
    }

    #[test]
    fn multiple_induction_variables() {
        assert_equivalent_and_removed(
            "t := 0; u := 100;
             do i = 1, 40
               t := t + 1;
               u := u - 2;
               A[t] := A[u] + 1;
             end",
            2,
        );
    }

    #[test]
    fn downward_induction_variable() {
        assert_equivalent_and_removed(
            "t := 200;
             do i = 1, 40
               A[t] := i;
               t := t - 3;
             end",
            1,
        );
    }
}

/// Test-only helper: affine form of the first array definition of the sole
/// loop.
#[cfg(test)]
pub(crate) mod analyses_probe {
    use crate::affine::AffineSub;
    use crate::stmt::{LValue, Program, Stmt};

    pub fn first_def_sub(p: &Program) -> Option<AffineSub> {
        let l = p.body.iter().find_map(|s| match s {
            Stmt::Do(l) => Some(l),
            _ => None,
        })?;
        for stmt in &l.body {
            if let Stmt::Assign(a) = stmt {
                if let LValue::Elem(r) = &a.lhs {
                    return AffineSub::from_expr(&r.subs[0], l.iv);
                }
            }
        }
        None
    }
}
