//! Loop normalization.
//!
//! The framework assumes (paper §1) that "all loops are normalized, i.e. the
//! induction variable ranges from 1 to an upper bound UB with increment
//! one". [`normalize`] rewrites every counted loop into that form:
//!
//! ```text
//! do i = L, U, s            do i' = 1, (U - L + s) / s
//!   … i …          =>          … L + (i' - 1)·s …
//! end                       end
//! ```
//!
//! Subscripts that were affine in `i` stay affine in `i'`. The rewrite
//! preserves semantics exactly for constant bounds and for symbolic bounds
//! whenever the original trip count is non-negative (the usual Fortran
//! precondition); this is validated against the interpreter in the tests.

use crate::expr::Expr;
use crate::stmt::{Block, Loop, LoopBound, Program, Stmt};
use crate::symbols::SymbolTable;

/// Normalizes every loop in the program (in place) and renumbers statements.
/// Returns the number of loops rewritten.
pub fn normalize(program: &mut Program) -> usize {
    let mut rewritten = 0;
    let mut body = std::mem::take(&mut program.body);
    normalize_block(&mut program.symbols, &mut body, &mut rewritten);
    program.body = body;
    program.renumber();
    rewritten
}

fn normalize_block(symbols: &mut SymbolTable, block: &mut Block, rewritten: &mut usize) {
    for stmt in block {
        match stmt {
            Stmt::Assign(_) => {}
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                normalize_block(symbols, then_blk, rewritten);
                normalize_block(symbols, else_blk, rewritten);
            }
            Stmt::Do(l) => {
                normalize_block(symbols, &mut l.body, rewritten);
                if !l.is_normalized() {
                    normalize_loop(symbols, l);
                    *rewritten += 1;
                }
            }
        }
    }
}

/// Rewrites one non-normalized loop. The loop body must already be
/// normalized (callers recurse inside-out).
///
/// # Panics
///
/// Panics if the loop step is zero.
fn normalize_loop(symbols: &mut SymbolTable, l: &mut Loop) {
    assert!(l.step != 0, "loop step must be non-zero");
    let old_iv = l.iv;
    let old_name = symbols.var_name(old_iv).to_string();
    let new_iv = symbols.fresh_var(&format!("{old_name}_n"));

    let lower = l.lower.to_expr();
    let upper = l.upper.to_expr();
    let step = l.step;

    // Trip count N = (U - L + s) / s, exact for constants.
    let new_upper = match (l.lower.as_const(), l.upper.as_const()) {
        (Some(lc), Some(uc)) => {
            let n = (uc - lc + step) / step;
            LoopBound::Const(n.max(0))
        }
        _ => LoopBound::Expr(Expr::bin(
            crate::expr::BinOp::Div,
            Expr::add(Expr::sub(upper.clone(), lower.clone()), Expr::Const(step)),
            Expr::Const(step),
        )),
    };

    // i := L + (i' - 1)·s
    let offset = Expr::sub(Expr::Scalar(new_iv), Expr::Const(1));
    let scaled = if step == 1 {
        offset
    } else {
        Expr::mul(offset, Expr::Const(step))
    };
    let replacement = match lower {
        Expr::Const(0) => scaled,
        _ => Expr::add(lower, scaled),
    };

    substitute_in_block(&mut l.body, old_iv, &replacement);

    l.iv = new_iv;
    l.lower = LoopBound::Const(1);
    l.upper = new_upper;
    l.step = 1;
}

fn substitute_in_block(block: &mut Block, v: crate::symbols::VarId, replacement: &Expr) {
    for stmt in block {
        match stmt {
            Stmt::Assign(a) => {
                a.rhs = a.rhs.substitute_scalar(v, replacement);
                if let crate::stmt::LValue::Elem(r) = &mut a.lhs {
                    for s in &mut r.subs {
                        *s = s.substitute_scalar(v, replacement);
                    }
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                cond.lhs = cond.lhs.substitute_scalar(v, replacement);
                cond.rhs = cond.rhs.substitute_scalar(v, replacement);
                substitute_in_block(then_blk, v, replacement);
                substitute_in_block(else_blk, v, replacement);
            }
            Stmt::Do(l) => {
                // Inner loop bounds may reference the outer IV.
                if let LoopBound::Expr(e) = &mut l.lower {
                    *e = e.substitute_scalar(v, replacement);
                }
                if let LoopBound::Expr(e) = &mut l.upper {
                    *e = e.substitute_scalar(v, replacement);
                }
                substitute_in_block(&mut l.body, v, replacement);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_with;
    use crate::parser::parse_program;

    /// Runs both programs over identical inputs and compares final array
    /// state.
    fn assert_equivalent(src: &str) {
        let orig = parse_program(src).unwrap();
        let mut norm = orig.clone();
        let n = normalize(&mut norm);
        assert!(n > 0, "expected at least one loop to be rewritten");
        let seed = |e: &mut crate::Env| {
            // Seed every array with a deterministic pattern so reads of
            // "uninitialized" elements still agree.
            for a in orig.symbols.array_ids() {
                for k in -50..200 {
                    e.set_elem(a, vec![k], k * 7 + 3);
                }
            }
        };
        let e1 = run_with(&orig, seed).unwrap();
        let e2 = run_with(&norm, seed).unwrap();
        assert_eq!(e1.array_state(), e2.array_state(), "program: {src}");
    }

    #[test]
    fn normalizes_shifted_lower_bound() {
        assert_equivalent("do i = 3, 12 A[i] := A[i-1] + 1; end");
    }

    #[test]
    fn normalizes_strided_loop() {
        assert_equivalent("do i = 2, 11, 3 A[i] := A[i] * 2; end");
    }

    #[test]
    fn normalizes_downward_loop() {
        assert_equivalent("do i = 10, 1, -1 A[i] := A[i+1] + 1; end");
    }

    #[test]
    fn normalizes_nested_loops() {
        assert_equivalent(
            "do j = 0, 4, 2
               do i = 2, 6
                 A[3 * i + j] := A[3 * i + j - 1] + j;
               end
             end",
        );
    }

    #[test]
    fn already_normalized_is_untouched() {
        let mut p = parse_program("do i = 1, 10 A[i] := 0; end").unwrap();
        let before = crate::pretty::print_program(&p);
        assert_eq!(normalize(&mut p), 0);
        assert_eq!(crate::pretty::print_program(&p), before);
    }

    #[test]
    fn rewritten_loop_is_normalized_and_affine() {
        let mut p = parse_program("do i = 5, 20, 3 A[2*i+1] := 0; end").unwrap();
        normalize(&mut p);
        let l = p.sole_loop().unwrap();
        assert!(l.is_normalized());
        assert_eq!(l.const_trip_count(), Some(6));
        // Subscript is still affine in the new IV: 2*(5 + (i'-1)*3) + 1 = 6i' + 5.
        if let Stmt::Assign(a) = &l.body[0] {
            if let crate::stmt::LValue::Elem(r) = &a.lhs {
                let aff = crate::affine::AffineSub::from_expr(&r.subs[0], l.iv).unwrap();
                assert_eq!(aff, crate::affine::AffineSub::simple(6, 5));
                return;
            }
        }
        panic!("unexpected body shape");
    }
}
