//! Symbol table and typed identifiers.
//!
//! Scalars (including loop induction variables) are identified by [`VarId`]
//! and arrays by [`ArrayId`]. Both are cheap copyable indices into a
//! [`SymbolTable`] that owns the names and per-array metadata.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a scalar variable (or loop induction variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// Identifier of an array variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Metadata about a declared array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Source-level name.
    pub name: String,
    /// Number of dimensions. One for ordinary vectors; multi-dimensional
    /// arrays are linearized for analysis (paper §3.6).
    pub rank: usize,
    /// Declared extent of each dimension, if known. `None` marks a
    /// symbolic/unknown extent.
    pub extents: Vec<Option<i64>>,
}

/// Interner mapping names to [`VarId`]/[`ArrayId`] and back.
///
/// A `SymbolTable` is owned by a [`crate::Program`]; all identifiers appearing
/// in that program's AST resolve through it.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    vars: Vec<String>,
    var_by_name: HashMap<String, VarId>,
    arrays: Vec<ArrayInfo>,
    array_by_name: HashMap<String, ArrayId>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a scalar variable name, returning its id. Repeated calls with
    /// the same name return the same id.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.var_by_name.get(name) {
            return id;
        }
        let id = VarId(self.vars.len() as u32);
        self.vars.push(name.to_string());
        self.var_by_name.insert(name.to_string(), id);
        id
    }

    /// Interns a rank-1 array with unknown extent.
    pub fn array(&mut self, name: &str) -> ArrayId {
        self.array_with(name, 1, vec![None])
    }

    /// Interns an array with the given rank and extents.
    ///
    /// # Panics
    ///
    /// Panics if the array was previously interned with a different rank.
    pub fn array_with(&mut self, name: &str, rank: usize, extents: Vec<Option<i64>>) -> ArrayId {
        assert_eq!(rank, extents.len(), "rank must match number of extents");
        if let Some(&id) = self.array_by_name.get(name) {
            assert_eq!(
                self.arrays[id.0 as usize].rank, rank,
                "array {name} re-declared with different rank"
            );
            return id;
        }
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayInfo {
            name: name.to_string(),
            rank,
            extents,
        });
        self.array_by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up a scalar by name without interning.
    pub fn lookup_var(&self, name: &str) -> Option<VarId> {
        self.var_by_name.get(name).copied()
    }

    /// Looks up an array by name without interning.
    pub fn lookup_array(&self, name: &str) -> Option<ArrayId> {
        self.array_by_name.get(name).copied()
    }

    /// Name of a scalar variable.
    pub fn var_name(&self, id: VarId) -> &str {
        &self.vars[id.0 as usize]
    }

    /// Metadata of an array.
    pub fn array_info(&self, id: ArrayId) -> &ArrayInfo {
        &self.arrays[id.0 as usize]
    }

    /// Name of an array.
    pub fn array_name(&self, id: ArrayId) -> &str {
        &self.arrays[id.0 as usize].name
    }

    /// Number of interned scalar variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of interned arrays.
    pub fn num_arrays(&self) -> usize {
        self.arrays.len()
    }

    /// Iterates over all scalar variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Iterates over all array ids.
    pub fn array_ids(&self) -> impl Iterator<Item = ArrayId> + '_ {
        (0..self.arrays.len() as u32).map(ArrayId)
    }

    /// Creates a fresh scalar whose name does not collide with any existing
    /// variable, based on `hint` (used by optimizations introducing
    /// temporaries).
    pub fn fresh_var(&mut self, hint: &str) -> VarId {
        if !self.var_by_name.contains_key(hint) {
            return self.var(hint);
        }
        for k in 0u64.. {
            let candidate = format!("{hint}{k}");
            if !self.var_by_name.contains_key(&candidate) {
                return self.var(&candidate);
            }
        }
        unreachable!("u64 counter exhausted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.var("i");
        let b = t.var("i");
        let c = t.var("j");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.var_name(a), "i");
        assert_eq!(t.num_vars(), 2);
    }

    #[test]
    fn array_interning_tracks_rank_and_extents() {
        let mut t = SymbolTable::new();
        let x = t.array_with("X", 2, vec![Some(10), None]);
        assert_eq!(t.array_info(x).rank, 2);
        assert_eq!(t.array_info(x).extents, vec![Some(10), None]);
        assert_eq!(t.array_name(x), "X");
        let x2 = t.array_with("X", 2, vec![Some(10), None]);
        assert_eq!(x, x2);
    }

    #[test]
    #[should_panic(expected = "different rank")]
    fn array_rank_mismatch_panics() {
        let mut t = SymbolTable::new();
        t.array("X");
        t.array_with("X", 2, vec![None, None]);
    }

    #[test]
    fn fresh_var_avoids_collisions() {
        let mut t = SymbolTable::new();
        t.var("t");
        t.var("t0");
        let f = t.fresh_var("t");
        assert_eq!(t.var_name(f), "t1");
        let g = t.fresh_var("u");
        assert_eq!(t.var_name(g), "u");
    }

    #[test]
    fn lookups_do_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.lookup_var("i").is_none());
        let i = t.var("i");
        assert_eq!(t.lookup_var("i"), Some(i));
        assert!(t.lookup_array("A").is_none());
        let a = t.array("A");
        assert_eq!(t.lookup_array("A"), Some(a));
    }
}
