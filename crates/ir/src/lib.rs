#![warn(missing_docs)]
//! Loop intermediate representation for array reference analysis.
//!
//! This crate provides the program representation assumed by the data flow
//! framework of Duesterwald, Gupta and Soffa (PLDI '93): Fortran-like `DO`
//! loops controlled by a basic induction variable, containing assignments,
//! conditionals and nested loops, where array subscripts are affine functions
//! `a·i + b` of the loop induction variable (with `b` possibly containing
//! *symbolic constants* such as the induction variables of enclosing loops or
//! array dimension sizes).
//!
//! The crate contains:
//!
//! * a symbol table and typed identifiers ([`VarId`], [`ArrayId`]),
//! * symbolic linear expressions ([`LinExpr`]) and affine subscript forms
//!   ([`AffineSub`]) with exact symbolic arithmetic,
//! * the statement/expression AST ([`Stmt`], [`Expr`], [`Program`]),
//! * a small Fortran-like text format ([`parse_program`]) and pretty printer,
//! * loop normalization ([`normalize()`]) so every analyzed loop runs its
//!   induction variable from 1 to an upper bound with increment one,
//! * a reference interpreter ([`interp`]) used to validate that optimizations
//!   preserve semantics.
//!
//! # Example
//!
//! ```
//! use arrayflow_ir::parse_program;
//!
//! let program = parse_program(
//!     "do i = 1, 100
//!        A[i+2] := A[i] + x;
//!      end",
//! ).unwrap();
//! let l = program.sole_loop().unwrap();
//! assert_eq!(program.name(l.iv), "i");
//! ```

pub mod affine;
pub mod builder;
pub mod canon;
pub mod edit;
pub mod expr;
pub mod indvars;
pub mod interp;
pub mod linexpr;
pub mod normalize;
pub mod parser;
pub mod pretty;
pub mod stmt;
pub mod symbols;
pub mod visit;

pub use affine::AffineSub;
pub use builder::LoopBuilder;
pub use canon::{fingerprint_loop, fingerprint_program, Fingerprint};
pub use edit::{apply_edit, Edit, EditError, EditShape};
pub use expr::{BinOp, Cond, Expr, RelOp};
pub use indvars::{remove_induction_variables, IndVarRemoval};
pub use interp::{Env, InterpError};
pub use linexpr::LinExpr;
pub use normalize::normalize;
pub use parser::{parse_program, parse_program_bytes, parse_stmt_with, ParseError};
pub use stmt::{ArrayRef, Assign, Block, LValue, Loop, LoopBound, Program, Stmt, StmtId};
pub use symbols::{ArrayId, ArrayInfo, SymbolTable, VarId};
