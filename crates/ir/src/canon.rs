//! Canonical loop fingerprints.
//!
//! A batch analysis service sees thousands of structurally identical loops
//! whose only differences are *names*: the induction variable is `i` in one
//! compilation unit and `j` in another, the symbolic upper bound is `N` or
//! `len`, the arrays are `A`/`B` or `src`/`dst`. The analysis results of
//! the framework are invariant under such renamings — every fact is stated
//! in terms of site indices, tracked-reference indices and iteration
//! distances, never raw names — so alpha-equivalent loops can share one
//! cached analysis.
//!
//! This module computes a stable 128-bit structural hash of a loop (or
//! whole program) after **alpha-renaming**: scalar variables and arrays are
//! replaced by dense indices in order of first occurrence during a
//! deterministic pre-order walk of the AST. Two loops collide iff they have
//! the same shape — same statement structure, same operators, same constant
//! values, same subscript expressions and bounds *up to renaming*.
//!
//! What the fingerprint does **not** normalize (deliberately — these change
//! analysis results): loop bounds and steps, subscript coefficients and
//! offsets, constant values, conditional structure and relational
//! operators, statement order, array ranks and declared extents.
//!
//! The hash is FNV-1a over a canonical byte encoding, widened to 128 bits
//! so accidental collisions are out of reach for realistic cache sizes
//! (implemented in-repo; the workspace has no external dependencies).

use std::collections::HashMap;
use std::fmt;

use crate::expr::{BinOp, Cond, Expr, RelOp};
use crate::stmt::{ArrayRef, Assign, Block, LValue, Loop, LoopBound, Program, Stmt};
use crate::symbols::{ArrayId, SymbolTable, VarId};

/// A 128-bit canonical structural hash of a loop or program.
///
/// Equal fingerprints mean "alpha-equivalent with overwhelming
/// probability"; unequal fingerprints mean "definitely not
/// alpha-equivalent" (the encoding is injective, only the hash can
/// collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// FNV-1a/128 over the canonical encoding, with first-occurrence
/// alpha-renaming tables for scalars and arrays.
struct Canonicalizer<'a> {
    hash: u128,
    vars: HashMap<VarId, u32>,
    arrays: HashMap<ArrayId, u32>,
    symbols: &'a SymbolTable,
}

// One tag byte per construct keeps the encoding prefix-free enough that
// structurally different ASTs cannot produce the same byte stream.
mod tag {
    pub const CONST: u8 = 0x01;
    pub const SCALAR: u8 = 0x02;
    pub const ELEM: u8 = 0x03;
    pub const BIN: u8 = 0x04;
    pub const ASSIGN: u8 = 0x10;
    pub const IF: u8 = 0x11;
    pub const DO: u8 = 0x12;
    pub const LV_SCALAR: u8 = 0x13;
    pub const LV_ELEM: u8 = 0x14;
    pub const BOUND_CONST: u8 = 0x20;
    pub const BOUND_EXPR: u8 = 0x21;
    pub const BLOCK: u8 = 0x30;
    pub const ARRAY_META: u8 = 0x40;
    pub const EXTENT_KNOWN: u8 = 0x41;
    pub const EXTENT_UNKNOWN: u8 = 0x42;
    pub const PROGRAM: u8 = 0x50;
}

impl<'a> Canonicalizer<'a> {
    fn new(symbols: &'a SymbolTable) -> Self {
        Self {
            hash: FNV128_OFFSET,
            vars: HashMap::new(),
            arrays: HashMap::new(),
            symbols,
        }
    }

    fn byte(&mut self, b: u8) {
        self.hash ^= b as u128;
        self.hash = self.hash.wrapping_mul(FNV128_PRIME);
    }

    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn i64(&mut self, v: i64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Canonical index of a scalar: dense, in order of first occurrence.
    fn var(&mut self, v: VarId) {
        let next = self.vars.len() as u32;
        let idx = *self.vars.entry(v).or_insert(next);
        self.u32(idx);
    }

    /// Canonical index of an array. On first occurrence the array's
    /// analysis-relevant metadata (rank, known extents) is folded in:
    /// linearization depends on it, so arrays differing in shape must not
    /// collide.
    fn array(&mut self, a: ArrayId) {
        let next = self.arrays.len() as u32;
        let mut first = false;
        let idx = *self.arrays.entry(a).or_insert_with(|| {
            first = true;
            next
        });
        self.u32(idx);
        if first {
            let info = self.symbols.array_info(a);
            self.byte(tag::ARRAY_META);
            self.u32(info.rank as u32);
            for e in &info.extents {
                match e {
                    Some(c) => {
                        self.byte(tag::EXTENT_KNOWN);
                        self.i64(*c);
                    }
                    None => self.byte(tag::EXTENT_UNKNOWN),
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(c) => {
                self.byte(tag::CONST);
                self.i64(*c);
            }
            Expr::Scalar(v) => {
                self.byte(tag::SCALAR);
                self.var(*v);
            }
            Expr::Elem(r) => {
                self.byte(tag::ELEM);
                self.aref(r);
            }
            Expr::Bin(op, l, r) => {
                self.byte(tag::BIN);
                self.byte(match op {
                    BinOp::Add => 0,
                    BinOp::Sub => 1,
                    BinOp::Mul => 2,
                    BinOp::Div => 3,
                });
                self.expr(l);
                self.expr(r);
            }
        }
    }

    fn aref(&mut self, r: &ArrayRef) {
        self.array(r.array);
        self.u32(r.subs.len() as u32);
        for s in &r.subs {
            self.expr(s);
        }
    }

    fn cond(&mut self, c: &Cond) {
        self.byte(match c.op {
            RelOp::Eq => 0,
            RelOp::Ne => 1,
            RelOp::Lt => 2,
            RelOp::Le => 3,
            RelOp::Gt => 4,
            RelOp::Ge => 5,
        });
        self.expr(&c.lhs);
        self.expr(&c.rhs);
    }

    fn bound(&mut self, b: &LoopBound) {
        // `Const(c)` and `Expr(Const(c))` mean the same loop; canonicalize
        // through `as_const` so they collide.
        match b.as_const() {
            Some(c) => {
                self.byte(tag::BOUND_CONST);
                self.i64(c);
            }
            None => {
                self.byte(tag::BOUND_EXPR);
                self.bound_expr(b);
            }
        }
    }

    fn bound_expr(&mut self, b: &LoopBound) {
        match b {
            LoopBound::Const(c) => {
                self.byte(tag::CONST);
                self.i64(*c);
            }
            LoopBound::Expr(e) => self.expr(e),
        }
    }

    fn assign(&mut self, a: &Assign) {
        self.byte(tag::ASSIGN);
        match &a.lhs {
            LValue::Scalar(v) => {
                self.byte(tag::LV_SCALAR);
                self.var(*v);
            }
            LValue::Elem(r) => {
                self.byte(tag::LV_ELEM);
                self.aref(r);
            }
        }
        self.expr(&a.rhs);
    }

    fn block(&mut self, b: &Block) {
        self.byte(tag::BLOCK);
        self.u32(b.len() as u32);
        for s in b {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign(a) => self.assign(a),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.byte(tag::IF);
                self.cond(cond);
                self.block(then_blk);
                self.block(else_blk);
            }
            Stmt::Do(l) => self.do_loop(l),
        }
    }

    fn do_loop(&mut self, l: &Loop) {
        self.byte(tag::DO);
        // The IV participates in first-occurrence renaming like any other
        // scalar: it occurs first in its own header, so the IV of the
        // outermost fingerprinted loop is always canonical index 0 there.
        self.var(l.iv);
        self.bound(&l.lower);
        self.bound(&l.upper);
        self.i64(l.step);
        self.block(&l.body);
    }

    fn finish(self) -> Fingerprint {
        Fingerprint(self.hash)
    }
}

/// Fingerprints one loop (with its entire body, including nested loops).
///
/// Alpha-equivalent loops — equal up to consistent renaming of scalars
/// (induction variables, symbolic constants) and arrays — map to the same
/// fingerprint; loops differing in bounds, steps, subscripts, operators,
/// constants or control structure do not (modulo the 2⁻¹²⁸ hash-collision
/// probability).
///
/// ```
/// use arrayflow_ir::{canon, parse_program};
///
/// let a = parse_program("do i = 1, 100 A[i+2] := A[i] + x; end").unwrap();
/// let b = parse_program("do j = 1, 100 B[j+2] := B[j] + y; end").unwrap();
/// let c = parse_program("do i = 1, 100 A[i+3] := A[i] + x; end").unwrap();
/// let fa = canon::fingerprint_loop(a.sole_loop().unwrap(), &a.symbols);
/// let fb = canon::fingerprint_loop(b.sole_loop().unwrap(), &b.symbols);
/// let fc = canon::fingerprint_loop(c.sole_loop().unwrap(), &c.symbols);
/// assert_eq!(fa, fb);
/// assert_ne!(fa, fc);
/// ```
pub fn fingerprint_loop(l: &Loop, symbols: &SymbolTable) -> Fingerprint {
    let mut c = Canonicalizer::new(symbols);
    c.do_loop(l);
    c.finish()
}

/// Fingerprints a whole program body (top-level statements in order).
pub fn fingerprint_program(p: &Program) -> Fingerprint {
    let mut c = Canonicalizer::new(&p.symbols);
    c.byte(tag::PROGRAM);
    c.block(&p.body);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn fp(src: &str) -> Fingerprint {
        let p = parse_program(src).unwrap();
        let l = p.sole_loop().expect("single loop");
        fingerprint_loop(l, &p.symbols)
    }

    #[test]
    fn renaming_collides() {
        assert_eq!(
            fp("do i = 1, 10 A[i] := A[i-1] + x; end"),
            fp("do k = 1, 10 Z[k] := Z[k-1] + w; end"),
        );
    }

    #[test]
    fn distinct_arrays_do_not_merge() {
        // A[i] := B[i] uses two arrays; A[i] := A[i] uses one. A naive
        // name-erasing hash would conflate them.
        assert_ne!(
            fp("do i = 1, 10 A[i] := B[i]; end"),
            fp("do i = 1, 10 A[i] := A[i]; end"),
        );
    }

    #[test]
    fn bound_const_and_const_expr_collide() {
        let mut p = parse_program("do i = 1, 10 A[i] := 0; end").unwrap();
        let base = fingerprint_loop(p.sole_loop().unwrap(), &p.symbols);
        p.sole_loop_mut().unwrap().upper = LoopBound::Expr(Expr::Const(10));
        assert_eq!(base, fingerprint_loop(p.sole_loop().unwrap(), &p.symbols));
    }

    #[test]
    fn display_is_32_hex_digits() {
        let f = fp("do i = 1, 10 A[i] := 0; end");
        let s = f.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
