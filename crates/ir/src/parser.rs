//! Parser for the Fortran-like loop DSL.
//!
//! Grammar (semicolons terminate assignments; `end` closes `do` and `if`):
//!
//! ```text
//! program := { stmt }
//! stmt    := do | if | assign
//! do      := "do" IDENT "=" expr "," expr [ "," INT ] { stmt } "end"
//! if      := "if" cond "then" { stmt } [ "else" { stmt } ] "end"
//! assign  := lvalue ":=" expr ";"
//! lvalue  := IDENT [ "[" expr { "," expr } "]" ]
//! cond    := expr ("=="|"!="|"<"|"<="|">"|">=") expr
//! expr    := term { ("+"|"-") term }
//! term    := factor { ("*"|"/") factor }
//! factor  := INT | "-" factor | "(" expr ")"
//!          | IDENT [ "[" expr { "," expr } "]" ]
//! ```
//!
//! Identifiers used with brackets denote arrays (rank fixed by first use);
//! all other identifiers are scalars.

use std::fmt;

use crate::expr::{BinOp, Cond, Expr, RelOp};
use crate::stmt::{ArrayRef, Assign, Block, LValue, Loop, Program, Stmt};
use crate::symbols::SymbolTable;

/// Error produced by [`parse_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Assign, // :=
    Semi,
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Plus,
    Minus,
    Star,
    Slash,
    Rel(RelOp),
    KwDo,
    KwEnd,
    KwIf,
    KwThen,
    KwElse,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            Tok::Assign => write!(f, "`:=`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Rel(_) => write!(f, "relational operator"),
            Tok::KwDo => write!(f, "`do`"),
            Tok::KwEnd => write!(f, "`end`"),
            Tok::KwIf => write!(f, "`if`"),
            Tok::KwThen => write!(f, "`then`"),
            Tok::KwElse => write!(f, "`else`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a [u8]) -> Self {
        Self {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn next_tok(&mut self) -> Result<(Tok, usize), ParseError> {
        loop {
            while self.pos < self.src.len() {
                let c = self.src[self.pos];
                if c == b'\n' {
                    self.line += 1;
                    self.pos += 1;
                } else if c.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            // Comments: `--` or `{ ... }` (Pascal-style, as in the paper's figures).
            if self.pos + 1 < self.src.len()
                && self.src[self.pos] == b'-'
                && self.src[self.pos + 1] == b'-'
            {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'{' {
                while self.pos < self.src.len() && self.src[self.pos] != b'}' {
                    if self.src[self.pos] == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                if self.pos == self.src.len() {
                    return Err(self.err("unterminated `{` comment"));
                }
                self.pos += 1; // consume '}'
                continue;
            }
            break;
        }
        let line = self.line;
        if self.pos >= self.src.len() {
            return Ok((Tok::Eof, line));
        }
        let c = self.src[self.pos];
        let tok = match c {
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'[' => {
                self.pos += 1;
                Tok::LBracket
            }
            b']' => {
                self.pos += 1;
                Tok::RBracket
            }
            b'+' => {
                self.pos += 1;
                Tok::Plus
            }
            b'-' => {
                self.pos += 1;
                Tok::Minus
            }
            b'*' => {
                self.pos += 1;
                Tok::Star
            }
            b'/' => {
                self.pos += 1;
                Tok::Slash
            }
            b':' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Assign
                } else {
                    return Err(self.err("expected `:=`"));
                }
            }
            b'=' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Rel(RelOp::Eq)
                } else {
                    // Single `=` appears in `do i = …`; treat as assignment
                    // separator token reused via Rel(Eq)? Keep distinct: the
                    // parser for `do` accepts Rel(Eq) or `=`.
                    self.pos += 1;
                    Tok::Rel(RelOp::Eq)
                }
            }
            b'!' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Rel(RelOp::Ne)
                } else {
                    return Err(self.err("expected `!=`"));
                }
            }
            b'<' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Rel(RelOp::Le)
                } else {
                    self.pos += 1;
                    Tok::Rel(RelOp::Lt)
                }
            }
            b'>' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Rel(RelOp::Ge)
                } else {
                    self.pos += 1;
                    Tok::Rel(RelOp::Gt)
                }
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in integer literal"))?;
                let n: i64 = text
                    .parse()
                    .map_err(|_| self.err(format!("integer literal `{text}` out of range")))?;
                Tok::Int(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in identifier"))?;
                match text {
                    "do" => Tok::KwDo,
                    "end" | "enddo" | "endif" => Tok::KwEnd,
                    "if" => Tok::KwIf,
                    "then" => Tok::KwThen,
                    "else" => Tok::KwElse,
                    _ => Tok::Ident(text.to_string()),
                }
            }
            other if other.is_ascii() => {
                return Err(self.err(format!("unexpected character `{}`", other as char)));
            }
            other => {
                return Err(self.err(format!("unexpected byte 0x{other:02x}")));
            }
        };
        Ok((tok, line))
    }
}

/// Maximum combined statement/expression nesting depth. Hostile input
/// (e.g. ten thousand `(`s) must produce a [`ParseError`], not a stack
/// overflow — the analysis service feeds untrusted bytes to this parser.
const MAX_DEPTH: usize = 256;

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    depth: usize,
    program: Program,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Interns `name` as an array of rank `rank`, reporting rank
    /// inconsistencies as a [`ParseError`] rather than panicking in
    /// [`SymbolTable::array_with`](crate::SymbolTable::array_with).
    fn intern_array(&mut self, name: &str, rank: usize) -> Result<crate::ArrayId, ParseError> {
        if let Some(id) = self.program.symbols.lookup_array(name) {
            if self.program.symbols.array_info(id).rank != rank {
                return Err(self.err(format!("array `{name}` used with inconsistent rank")));
            }
            return Ok(id);
        }
        Ok(self
            .program
            .symbols
            .array_with(name, rank, vec![None; rank]))
    }

    fn parse_block(&mut self, stop_at_else: bool) -> Result<Block, ParseError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof | Tok::KwEnd => break,
                Tok::KwElse if stop_at_else => break,
                _ => out.push(self.parse_stmt()?),
            }
        }
        Ok(out)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Tok::KwDo => self.parse_do(),
            Tok::KwIf => self.parse_if(),
            Tok::Ident(_) => self.parse_assign(),
            other => Err(self.err(format!("expected statement, found {other}"))),
        }
    }

    fn parse_do(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let r = self.parse_do_inner();
        self.leave();
        r
    }

    fn parse_do_inner(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::KwDo)?;
        let name = match self.bump() {
            Tok::Ident(s) => s,
            other => return Err(self.err(format!("expected loop variable, found {other}"))),
        };
        let iv = self.program.symbols.var(&name);
        match self.bump() {
            Tok::Rel(RelOp::Eq) => {}
            other => return Err(self.err(format!("expected `=`, found {other}"))),
        }
        let lower = self.parse_expr()?;
        self.expect(&Tok::Comma)?;
        let upper = self.parse_expr()?;
        let step = if self.peek() == &Tok::Comma {
            self.bump();
            match self.bump() {
                Tok::Int(n) => n,
                Tok::Minus => match self.bump() {
                    Tok::Int(n) => -n,
                    other => return Err(self.err(format!("expected step, found {other}"))),
                },
                other => return Err(self.err(format!("expected constant step, found {other}"))),
            }
        } else {
            1
        };
        let body = self.parse_block(false)?;
        self.expect(&Tok::KwEnd)?;
        Ok(Stmt::Do(Loop {
            iv,
            lower: lower.into(),
            upper: upper.into(),
            step,
            body,
        }))
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let r = self.parse_if_inner();
        self.leave();
        r
    }

    fn parse_if_inner(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::KwIf)?;
        let lhs = self.parse_expr()?;
        let op = match self.bump() {
            Tok::Rel(op) => op,
            other => {
                return Err(self.err(format!("expected relational operator, found {other}")));
            }
        };
        let rhs = self.parse_expr()?;
        self.expect(&Tok::KwThen)?;
        let then_blk = self.parse_block(true)?;
        let else_blk = if self.peek() == &Tok::KwElse {
            self.bump();
            self.parse_block(false)?
        } else {
            Vec::new()
        };
        self.expect(&Tok::KwEnd)?;
        Ok(Stmt::If {
            cond: Cond::new(lhs, op, rhs),
            then_blk,
            else_blk,
        })
    }

    fn parse_assign(&mut self) -> Result<Stmt, ParseError> {
        let name = match self.bump() {
            Tok::Ident(s) => s,
            other => return Err(self.err(format!("expected identifier, found {other}"))),
        };
        let lhs = if self.peek() == &Tok::LBracket {
            let subs = self.parse_subscripts()?;
            let id = self.intern_array(&name, subs.len())?;
            LValue::Elem(ArrayRef { array: id, subs })
        } else {
            LValue::Scalar(self.program.symbols.var(&name))
        };
        self.expect(&Tok::Assign)?;
        let rhs = self.parse_expr()?;
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Assign(Assign::new(lhs, rhs)))
    }

    fn parse_subscripts(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(&Tok::LBracket)?;
        let mut subs = vec![self.parse_expr()?];
        while self.peek() == &Tok::Comma {
            self.bump();
            subs.push(self.parse_expr()?);
        }
        self.expect(&Tok::RBracket)?;
        Ok(subs)
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_term()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_factor()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = self.parse_factor_inner();
        self.leave();
        r
    }

    fn parse_factor_inner(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Int(n) => Ok(Expr::Const(n)),
            Tok::Minus => {
                let inner = self.parse_factor()?;
                Ok(match inner {
                    Expr::Const(n) => Expr::Const(-n),
                    e => Expr::sub(Expr::Const(0), e),
                })
            }
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.peek() == &Tok::LBracket {
                    let subs = self.parse_subscripts()?;
                    let id = self.intern_array(&name, subs.len())?;
                    Ok(Expr::Elem(ArrayRef { array: id, subs }))
                } else {
                    Ok(Expr::Scalar(self.program.symbols.var(&name)))
                }
            }
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].1,
                message: format!("expected expression, found {other}"),
            }),
        }
    }
}

/// Parses a program in the loop DSL, interning all identifiers and numbering
/// every assignment.
///
/// # Errors
///
/// Returns a [`ParseError`] with line information on malformed input, and
/// when an array is used with inconsistent rank.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), arrayflow_ir::ParseError> {
/// let p = arrayflow_ir::parse_program(
///     "do i = 1, UB
///        C[i+2] := C[i] * 2;
///        B[2*i] := C[i] + x;
///        if C[i] == 0 then C[i] := B[i-1]; end
///        B[i] := C[i+1];
///      end",
/// )?;
/// assert!(p.sole_loop().is_some());
/// # Ok(())
/// # }
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_program_bytes(src.as_bytes())
}

/// Parses exactly one statement against an existing symbol table, as
/// required to apply a single-statement edit to an already-parsed program:
/// identifiers resolve to the program's variables and arrays (array ranks
/// stay consistent with prior uses; new names are interned). Returns the
/// statement and the possibly-extended symbol table. Trailing input after
/// the statement is an error.
///
/// The statement's assignments carry [`StmtId::UNASSIGNED`](crate::stmt::StmtId::UNASSIGNED)
/// ids; callers renumber after splicing.
pub fn parse_stmt_with(
    symbols: &SymbolTable,
    src: &str,
) -> Result<(Stmt, SymbolTable), ParseError> {
    let mut lexer = Lexer::new(src.as_bytes());
    let mut toks = Vec::new();
    loop {
        let (tok, line) = lexer.next_tok()?;
        let done = tok == Tok::Eof;
        toks.push((tok, line));
        if done {
            break;
        }
    }
    let mut program = Program::new();
    program.symbols = symbols.clone();
    let mut parser = Parser {
        toks,
        pos: 0,
        depth: 0,
        program,
    };
    let stmt = parser.parse_stmt()?;
    if parser.peek() != &Tok::Eof {
        return Err(parser.err(format!(
            "expected a single statement, found trailing {}",
            parser.peek()
        )));
    }
    Ok((stmt, parser.program.symbols))
}

/// [`parse_program`] over raw bytes, for callers that receive programs
/// from an untrusted source (e.g. the analysis service reading the wire).
///
/// Never panics: invalid UTF-8, unexpected bytes, out-of-range literals,
/// inconsistent array ranks and pathological nesting all surface as
/// [`ParseError`]s.
pub fn parse_program_bytes(src: &[u8]) -> Result<Program, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    loop {
        let (tok, line) = lexer.next_tok()?;
        let done = tok == Tok::Eof;
        toks.push((tok, line));
        if done {
            break;
        }
    }
    let mut parser = Parser {
        toks,
        pos: 0,
        depth: 0,
        program: Program::new(),
    };
    let body = parser.parse_block(false)?;
    if parser.peek() != &Tok::Eof {
        return Err(parser.err(format!("unexpected {}", parser.peek())));
    }
    let mut program = parser.program;
    program.body = body;
    program.renumber();
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visit::count_stmts;

    #[test]
    fn parses_paper_fig1() {
        let p = parse_program(
            "do i = 1, UB
               C[i+2] := C[i] * 2;
               B[2*i] := C[i] + x;
               if C[i] == 0 then C[i] := B[i-1]; end
               B[i] := C[i+1];
             end",
        )
        .unwrap();
        let l = p.sole_loop().unwrap();
        assert_eq!(p.name(l.iv), "i");
        let c = count_stmts(&l.body);
        assert_eq!(c.assigns, 4);
        assert_eq!(c.ifs, 1);
    }

    #[test]
    fn parses_nested_loops_and_multidim() {
        let p = parse_program(
            "do j = 1, UB2
               do i = 1, UB1
                 X[i+1, j] := X[i, j];
                 Y[i, j+1] := Y[i, j-1];
               end
             end",
        )
        .unwrap();
        let outer = p.sole_loop().unwrap();
        assert_eq!(p.name(outer.iv), "j");
        let x = p.symbols.lookup_array("X").unwrap();
        assert_eq!(p.symbols.array_info(x).rank, 2);
    }

    #[test]
    fn parses_else_and_comments() {
        let p = parse_program(
            "do i = 1, 100 -- a stencil
               if x < 3 then
                 A[i] := 1; { then branch }
               else
                 A[i] := 2;
               end
             end",
        )
        .unwrap();
        let l = p.sole_loop().unwrap();
        match &l.body[0] {
            Stmt::If { else_blk, .. } => assert_eq!(else_blk.len(), 1),
            _ => panic!("expected if"),
        }
    }

    #[test]
    fn parses_steps_and_negative_bounds() {
        let p = parse_program("do i = 10, 1, -2 A[i] := 0; end").unwrap();
        let l = p.sole_loop().unwrap();
        assert_eq!(l.step, -2);
        assert_eq!(l.lower.as_const(), Some(10));
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        // Both orders: mismatch on the rhs after an lhs declaration, and
        // vice versa. Each is a ParseError, never a panic.
        let e = parse_program("do i = 1, 10 A[i] := A[i, 1]; end").unwrap_err();
        assert!(e.message.contains("inconsistent rank"));
        let e = parse_program("do i = 1, 10 A[i, 1] := A[i]; end").unwrap_err();
        assert!(e.message.contains("inconsistent rank"));
    }

    #[test]
    fn invalid_utf8_is_an_error_not_a_panic() {
        let e = parse_program_bytes(b"do i = 1, 10 A[i] := \xff\xfe; end").unwrap_err();
        assert!(e.message.contains("0x"));
        // Invalid UTF-8 *inside* no token can arise (multi-byte lead bytes
        // stop identifier/number scans), but the byte itself must error.
        assert!(parse_program_bytes(b"\x80").is_err());
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_stack_overflow() {
        let mut deep = String::from("do i = 1, 10 A[i] := ");
        deep.push_str(&"(".repeat(10_000));
        deep.push('1');
        deep.push_str(&")".repeat(10_000));
        deep.push_str("; end");
        let e = parse_program(&deep).unwrap_err();
        assert!(e.message.contains("nesting"));

        let mut loops = String::new();
        for _ in 0..10_000 {
            loops.push_str("do i = 1, 10 ");
        }
        assert!(parse_program(&loops).is_err());
    }

    #[test]
    fn error_reports_line() {
        let e = parse_program("do i = 1, 10\n  A[i] :=;\nend").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn division_and_parens() {
        let p = parse_program("do i = 1, 9 A[(i+1)/2] := A[i] / 3; end").unwrap();
        assert!(p.sole_loop().is_some());
    }
}
