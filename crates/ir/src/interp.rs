//! Reference interpreter.
//!
//! Executes programs directly over the AST with Fortran-like semantics
//! (arrays default-initialized to zero, integer arithmetic). The interpreter
//! is the ground truth used to validate that every optimization in
//! `arrayflow-opt` preserves observable behaviour, and it counts array
//! reads/writes so that redundancy-elimination effects can be measured at
//! the source level, independent of any machine model.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::{BinOp, Cond, Expr};
use crate::stmt::{ArrayRef, Block, LValue, Program, Stmt};
use crate::symbols::{ArrayId, VarId};

/// Errors raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Integer division by zero.
    DivisionByZero,
    /// A statement assigned to the induction variable of an enclosing active
    /// loop — forbidden by the paper's loop model (§1).
    InductionVariableAssigned(VarId),
    /// The step budget was exhausted (runaway loop protection).
    BudgetExceeded,
    /// Arithmetic overflowed `i64`.
    Overflow,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::DivisionByZero => write!(f, "division by zero"),
            InterpError::InductionVariableAssigned(v) => {
                write!(f, "assignment to active induction variable {v}")
            }
            InterpError::BudgetExceeded => write!(f, "execution budget exceeded"),
            InterpError::Overflow => write!(f, "integer overflow"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Execution statistics gathered by the interpreter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Array element reads.
    pub array_reads: u64,
    /// Array element writes.
    pub array_writes: u64,
    /// Assignments executed.
    pub assigns: u64,
    /// Loop iterations executed (summed over all loops).
    pub iterations: u64,
}

/// The mutable program state: scalar bindings plus sparse array storage.
#[derive(Debug, Clone, Default)]
pub struct Env {
    scalars: BTreeMap<VarId, i64>,
    arrays: BTreeMap<ArrayId, BTreeMap<Vec<i64>, i64>>,
    /// Statistics for the most recent [`Env::run`].
    pub stats: InterpStats,
    /// Remaining step budget; decremented per executed statement.
    budget: u64,
}

impl Env {
    /// Creates an empty environment with a generous default budget.
    pub fn new() -> Self {
        Self {
            budget: 100_000_000,
            ..Self::default()
        }
    }

    /// Creates an environment with an explicit step budget.
    pub fn with_budget(budget: u64) -> Self {
        Self {
            budget,
            ..Self::default()
        }
    }

    /// Sets a scalar before execution.
    pub fn set_scalar(&mut self, v: VarId, value: i64) {
        self.scalars.insert(v, value);
    }

    /// Reads a scalar (zero if unset).
    pub fn scalar(&self, v: VarId) -> i64 {
        self.scalars.get(&v).copied().unwrap_or(0)
    }

    /// Sets an array element before execution.
    pub fn set_elem(&mut self, a: ArrayId, idx: Vec<i64>, value: i64) {
        self.arrays.entry(a).or_default().insert(idx, value);
    }

    /// Reads an array element (zero if unset). Does not count as a measured
    /// read.
    pub fn elem(&self, a: ArrayId, idx: &[i64]) -> i64 {
        self.arrays
            .get(&a)
            .and_then(|m| m.get(idx))
            .copied()
            .unwrap_or(0)
    }

    /// A snapshot of all array contents, for whole-state equivalence checks.
    pub fn array_state(&self) -> &BTreeMap<ArrayId, BTreeMap<Vec<i64>, i64>> {
        &self.arrays
    }

    /// A snapshot of all scalar bindings.
    pub fn scalar_state(&self) -> &BTreeMap<VarId, i64> {
        &self.scalars
    }

    /// Runs a whole program.
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn run(&mut self, program: &Program) -> Result<(), InterpError> {
        self.stats = InterpStats::default();
        let mut active_ivs = Vec::new();
        self.exec_block(&program.body, &mut active_ivs)
    }

    fn charge(&mut self) -> Result<(), InterpError> {
        if self.budget == 0 {
            return Err(InterpError::BudgetExceeded);
        }
        self.budget -= 1;
        Ok(())
    }

    fn exec_block(
        &mut self,
        block: &Block,
        active_ivs: &mut Vec<VarId>,
    ) -> Result<(), InterpError> {
        for stmt in block {
            self.exec_stmt(stmt, active_ivs)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt, active_ivs: &mut Vec<VarId>) -> Result<(), InterpError> {
        self.charge()?;
        match stmt {
            Stmt::Assign(a) => {
                let value = self.eval(&a.rhs)?;
                self.stats.assigns += 1;
                match &a.lhs {
                    LValue::Scalar(v) => {
                        if active_ivs.contains(v) {
                            return Err(InterpError::InductionVariableAssigned(*v));
                        }
                        self.scalars.insert(*v, value);
                    }
                    LValue::Elem(r) => {
                        let idx = self.eval_subs(r)?;
                        self.stats.array_writes += 1;
                        self.arrays.entry(r.array).or_default().insert(idx, value);
                    }
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                if self.eval_cond(cond)? {
                    self.exec_block(then_blk, active_ivs)?;
                } else {
                    self.exec_block(else_blk, active_ivs)?;
                }
            }
            Stmt::Do(l) => {
                let lower = self.eval(&l.lower.to_expr())?;
                let upper = self.eval(&l.upper.to_expr())?;
                if l.step == 0 {
                    return Err(InterpError::BudgetExceeded);
                }
                active_ivs.push(l.iv);
                let mut i = lower;
                loop {
                    let in_range = if l.step > 0 { i <= upper } else { i >= upper };
                    if !in_range {
                        break;
                    }
                    self.scalars.insert(l.iv, i);
                    self.stats.iterations += 1;
                    self.charge()?;
                    self.exec_block(&l.body, active_ivs)?;
                    i = i.checked_add(l.step).ok_or(InterpError::Overflow)?;
                }
                active_ivs.pop();
            }
        }
        Ok(())
    }

    fn eval_cond(&mut self, c: &Cond) -> Result<bool, InterpError> {
        let l = self.eval(&c.lhs)?;
        let r = self.eval(&c.rhs)?;
        Ok(c.op.eval(l, r))
    }

    fn eval_subs(&mut self, r: &ArrayRef) -> Result<Vec<i64>, InterpError> {
        r.subs.iter().map(|e| self.eval(e)).collect()
    }

    /// Evaluates an expression in the current state, counting array reads.
    pub fn eval(&mut self, e: &Expr) -> Result<i64, InterpError> {
        match e {
            Expr::Const(c) => Ok(*c),
            Expr::Scalar(v) => Ok(self.scalar(*v)),
            Expr::Elem(r) => {
                let idx = self.eval_subs(r)?;
                self.stats.array_reads += 1;
                Ok(self.elem(r.array, &idx))
            }
            Expr::Bin(op, l, r) => {
                let l = self.eval(l)?;
                let r = self.eval(r)?;
                match op {
                    // Two's-complement wrapping, matching the virtual
                    // machine's semantics so IR-level and machine-level
                    // equivalence checks agree on pathological inputs.
                    BinOp::Add => Ok(l.wrapping_add(r)),
                    BinOp::Sub => Ok(l.wrapping_sub(r)),
                    BinOp::Mul => Ok(l.wrapping_mul(r)),
                    BinOp::Div => {
                        if r == 0 {
                            Err(InterpError::DivisionByZero)
                        } else {
                            Ok(l / r)
                        }
                    }
                }
            }
        }
    }
}

/// Runs `program` in a fresh environment seeded by `setup`, returning the
/// final environment.
///
/// # Errors
///
/// Propagates any [`InterpError`] raised during execution.
pub fn run_with(program: &Program, setup: impl FnOnce(&mut Env)) -> Result<Env, InterpError> {
    let mut env = Env::new();
    setup(&mut env);
    env.run(program)?;
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn executes_simple_stencil() {
        let p = parse_program(
            "do i = 1, 10
               A[i+2] := A[i] + x;
             end",
        )
        .unwrap();
        let x = p.symbols.lookup_var("x").unwrap();
        let a = p.symbols.lookup_array("A").unwrap();
        let env = run_with(&p, |e| {
            e.set_scalar(x, 5);
            e.set_elem(a, vec![1], 100);
            e.set_elem(a, vec![2], 200);
        })
        .unwrap();
        // A[3] = A[1]+5 = 105; A[5] = A[3]+5 = 110; ...
        assert_eq!(env.elem(a, &[3]), 105);
        assert_eq!(env.elem(a, &[5]), 110);
        assert_eq!(env.elem(a, &[4]), 205);
        assert_eq!(env.stats.array_reads, 10);
        assert_eq!(env.stats.array_writes, 10);
        assert_eq!(env.stats.iterations, 10);
    }

    #[test]
    fn conditionals_and_else() {
        let p = parse_program(
            "do i = 1, 4
               if i < 3 then A[i] := 1; else A[i] := 2; end
             end",
        )
        .unwrap();
        let a = p.symbols.lookup_array("A").unwrap();
        let env = run_with(&p, |_| {}).unwrap();
        assert_eq!(env.elem(a, &[1]), 1);
        assert_eq!(env.elem(a, &[2]), 1);
        assert_eq!(env.elem(a, &[3]), 2);
        assert_eq!(env.elem(a, &[4]), 2);
    }

    #[test]
    fn nested_loops_multidim() {
        let p = parse_program(
            "do j = 1, 3
               do i = 1, 3
                 X[i, j] := i * 10 + j;
               end
             end",
        )
        .unwrap();
        let x = p.symbols.lookup_array("X").unwrap();
        let env = run_with(&p, |_| {}).unwrap();
        assert_eq!(env.elem(x, &[2, 3]), 23);
        assert_eq!(env.stats.iterations, 3 + 9);
    }

    #[test]
    fn division_by_zero_is_reported() {
        let p = parse_program("do i = 1, 3 A[i] := i / (i - 2); end").unwrap();
        assert_eq!(
            run_with(&p, |_| {}).unwrap_err(),
            InterpError::DivisionByZero
        );
    }

    #[test]
    fn iv_assignment_is_rejected() {
        let p = parse_program("do i = 1, 3 i := 0; end").unwrap();
        let err = run_with(&p, |_| {}).unwrap_err();
        assert!(matches!(err, InterpError::InductionVariableAssigned(_)));
    }

    #[test]
    fn budget_prevents_runaway() {
        let p = parse_program("do i = 1, 1000000 A[i] := 0; end").unwrap();
        let mut env = Env::with_budget(100);
        assert_eq!(env.run(&p), Err(InterpError::BudgetExceeded));
    }

    #[test]
    fn zero_trip_loop_runs_nothing() {
        let p = parse_program("do i = 5, 1 A[i] := 1; end").unwrap();
        let env = run_with(&p, |_| {}).unwrap();
        assert_eq!(env.stats.iterations, 0);
        assert_eq!(env.stats.array_writes, 0);
    }

    #[test]
    fn negative_step_counts_down() {
        let p = parse_program("do i = 5, 1, -2 A[i] := i; end").unwrap();
        let a = p.symbols.lookup_array("A").unwrap();
        let env = run_with(&p, |_| {}).unwrap();
        assert_eq!(env.elem(a, &[5]), 5);
        assert_eq!(env.elem(a, &[3]), 3);
        assert_eq!(env.elem(a, &[1]), 1);
        assert_eq!(env.elem(a, &[2]), 0);
    }
}
