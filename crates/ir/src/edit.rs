//! Single-statement program edits.
//!
//! The incremental analysis engine models an interactive editing session as
//! a sequence of *statement replacements*: the client names an assignment
//! by its stable [`StmtId`] and supplies replacement source text. An
//! [`Edit`] whose text parses to another plain assignment preserves the
//! program's statement structure — same statement count, same ids after
//! renumbering, same flow graph shape — which is what lets the analysis
//! re-converge from a cached fixed point. Replacement text that parses to
//! a conditional or a nested loop is still applied, but reported as
//! [`EditShape::Structural`] so callers fall back to a full re-analysis.

use std::fmt;

use crate::parser::{parse_stmt_with, ParseError};
use crate::stmt::{Block, Program, Stmt, StmtId};

/// One statement replacement: substitute the assignment with id `stmt` by
/// the statement parsed from `text`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Stable id of the assignment to replace (see [`Program::renumber`]).
    pub stmt: StmtId,
    /// Replacement source text, e.g. `"A[i+1] := B[i] * 2;"`.
    pub text: String,
}

/// Why an edit could not be applied. The program is left unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// The replacement text did not parse as a statement.
    Parse(ParseError),
    /// No assignment with the given id exists in the program.
    NoSuchStmt(StmtId),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::Parse(e) => write!(f, "edit text: {e}"),
            EditError::NoSuchStmt(id) => write!(f, "no assignment with id {}", id.0),
        }
    }
}

impl std::error::Error for EditError {}

impl From<ParseError> for EditError {
    fn from(e: ParseError) -> Self {
        EditError::Parse(e)
    }
}

/// What kind of statement the edit substituted in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditShape {
    /// Assignment-for-assignment: statement structure (and therefore the
    /// flow graph shape and every statement id) is preserved.
    Assign,
    /// The replacement is a conditional or nested loop: the loop structure
    /// changed and any cached analysis state is stale.
    Structural,
}

fn replace_in_block(block: &mut Block, target: StmtId, new: &mut Option<Stmt>) -> bool {
    for stmt in block.iter_mut() {
        match stmt {
            Stmt::Assign(a) if a.id == target => {
                *stmt = new.take().expect("edit target ids are unique");
                return true;
            }
            Stmt::Assign(_) => {}
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                if replace_in_block(then_blk, target, new)
                    || replace_in_block(else_blk, target, new)
                {
                    return true;
                }
            }
            Stmt::Do(l) => {
                if replace_in_block(&mut l.body, target, new) {
                    return true;
                }
            }
        }
    }
    false
}

/// Applies `edit` to `program`: parses the replacement text against the
/// program's symbol table (new identifiers are interned, array ranks must
/// stay consistent), substitutes it for the named assignment, and
/// renumbers. On error the program is untouched.
///
/// For [`EditShape::Assign`] replacements the renumbering is the identity
/// — the new assignment inherits exactly the replaced statement's id — so
/// follow-up edits can keep using the ids the client already knows.
pub fn apply_edit(program: &mut Program, edit: &Edit) -> Result<EditShape, EditError> {
    let (stmt, symbols) = parse_stmt_with(&program.symbols, &edit.text)?;
    let shape = match &stmt {
        Stmt::Assign(_) => EditShape::Assign,
        Stmt::If { .. } | Stmt::Do(_) => EditShape::Structural,
    };
    let mut slot = Some(stmt);
    if !replace_in_block(&mut program.body, edit.stmt, &mut slot) {
        return Err(EditError::NoSuchStmt(edit.stmt));
    }
    program.symbols = symbols;
    program.renumber();
    Ok(shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::pretty::print_program;

    fn program() -> Program {
        parse_program(
            "do i = 1, 100
               A[i+2] := A[i] + x;
               if A[i] == 0 then B[i] := A[i+1]; end
               C[i] := B[i-1];
             end",
        )
        .unwrap()
    }

    #[test]
    fn assign_edit_preserves_ids_and_structure() {
        let mut p = program();
        let before = print_program(&p);
        let shape = apply_edit(
            &mut p,
            &Edit {
                stmt: StmtId(2),
                text: "C[i+1] := B[i] * 2;".into(),
            },
        )
        .unwrap();
        assert_eq!(shape, EditShape::Assign);
        let after = print_program(&p);
        assert_ne!(before, after);
        // Statement ids are stable: re-editing the same slot still works.
        apply_edit(
            &mut p,
            &Edit {
                stmt: StmtId(2),
                text: "C[i] := B[i-1];".into(),
            },
        )
        .unwrap();
        assert_eq!(print_program(&p), before);
    }

    #[test]
    fn edit_inside_conditional_branch() {
        let mut p = program();
        let shape = apply_edit(
            &mut p,
            &Edit {
                stmt: StmtId(1),
                text: "B[i+3] := A[i];".into(),
            },
        )
        .unwrap();
        assert_eq!(shape, EditShape::Assign);
        assert!(print_program(&p).contains("B[i + 3]"));
    }

    #[test]
    fn structural_replacement_is_flagged() {
        let mut p = program();
        let shape = apply_edit(
            &mut p,
            &Edit {
                stmt: StmtId(2),
                text: "if x < 1 then C[i] := B[i-1]; end".into(),
            },
        )
        .unwrap();
        assert_eq!(shape, EditShape::Structural);
    }

    #[test]
    fn new_arrays_are_interned_and_ranks_enforced() {
        let mut p = program();
        apply_edit(
            &mut p,
            &Edit {
                stmt: StmtId(0),
                text: "D[i] := A[i] + 1;".into(),
            },
        )
        .unwrap();
        assert!(p.symbols.lookup_array("D").is_some());
        let err = apply_edit(
            &mut p,
            &Edit {
                stmt: StmtId(0),
                text: "D[i, i] := 0;".into(),
            },
        )
        .unwrap_err();
        assert!(matches!(err, EditError::Parse(_)), "{err}");
    }

    #[test]
    fn unknown_statement_id_is_rejected() {
        let mut p = program();
        let err = apply_edit(
            &mut p,
            &Edit {
                stmt: StmtId(99),
                text: "A[i] := 0;".into(),
            },
        )
        .unwrap_err();
        assert_eq!(err, EditError::NoSuchStmt(StmtId(99)));
    }
}
