//! AST walking utilities.

use std::collections::HashSet;

use crate::expr::Expr;
use crate::stmt::{ArrayRef, Assign, Block, LValue, Stmt};
use crate::symbols::VarId;

/// Calls `f` on every assignment in the block, recursing into conditionals
/// and nested loops, in textual order.
pub fn for_each_assign<'a>(block: &'a Block, f: &mut impl FnMut(&'a Assign)) {
    for stmt in block {
        match stmt {
            Stmt::Assign(a) => f(a),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                for_each_assign(then_blk, f);
                for_each_assign(else_blk, f);
            }
            Stmt::Do(l) => for_each_assign(&l.body, f),
        }
    }
}

/// Mutable variant of [`for_each_assign`].
pub fn for_each_assign_mut(block: &mut Block, f: &mut impl FnMut(&mut Assign)) {
    for stmt in block {
        match stmt {
            Stmt::Assign(a) => f(a),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                for_each_assign_mut(then_blk, f);
                for_each_assign_mut(else_blk, f);
            }
            Stmt::Do(l) => for_each_assign_mut(&mut l.body, f),
        }
    }
}

/// Collects every array read inside an expression, in evaluation order.
pub fn array_uses_in_expr<'a>(expr: &'a Expr, out: &mut Vec<&'a ArrayRef>) {
    match expr {
        Expr::Const(_) | Expr::Scalar(_) => {}
        Expr::Elem(r) => {
            // Subscripts may themselves read arrays (not affine, but legal IR).
            for s in &r.subs {
                array_uses_in_expr(s, out);
            }
            out.push(r);
        }
        Expr::Bin(_, l, r) => {
            array_uses_in_expr(l, out);
            array_uses_in_expr(r, out);
        }
    }
}

/// Array uses of an assignment: reads on the right-hand side plus reads in
/// the left-hand side's subscripts.
pub fn assign_uses(a: &Assign) -> Vec<&ArrayRef> {
    let mut out = Vec::new();
    array_uses_in_expr(&a.rhs, &mut out);
    if let LValue::Elem(r) = &a.lhs {
        for s in &r.subs {
            array_uses_in_expr(s, &mut out);
        }
    }
    out
}

/// The array definition of an assignment, if its destination is subscripted.
pub fn assign_def(a: &Assign) -> Option<&ArrayRef> {
    match &a.lhs {
        LValue::Elem(r) => Some(r),
        LValue::Scalar(_) => None,
    }
}

/// Scalars assigned anywhere in the block (including nested loop induction
/// variables, which the loop header itself modifies).
pub fn modified_scalars(block: &Block) -> HashSet<VarId> {
    let mut out = HashSet::new();
    fn walk(block: &Block, out: &mut HashSet<VarId>) {
        for stmt in block {
            match stmt {
                Stmt::Assign(a) => {
                    if let LValue::Scalar(v) = a.lhs {
                        out.insert(v);
                    }
                }
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    walk(then_blk, out);
                    walk(else_blk, out);
                }
                Stmt::Do(l) => {
                    out.insert(l.iv);
                    walk(&l.body, out);
                }
            }
        }
    }
    walk(block, &mut out);
    out
}

/// Counts statements of each kind in a block (recursively).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StmtCounts {
    /// Number of assignments.
    pub assigns: usize,
    /// Number of conditionals.
    pub ifs: usize,
    /// Number of nested loops.
    pub loops: usize,
}

/// Tallies the statements in a block.
pub fn count_stmts(block: &Block) -> StmtCounts {
    let mut c = StmtCounts::default();
    fn walk(block: &Block, c: &mut StmtCounts) {
        for stmt in block {
            match stmt {
                Stmt::Assign(_) => c.assigns += 1,
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    c.ifs += 1;
                    walk(then_blk, c);
                    walk(else_blk, c);
                }
                Stmt::Do(l) => {
                    c.loops += 1;
                    walk(&l.body, c);
                }
            }
        }
    }
    walk(block, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Cond, RelOp};
    use crate::stmt::Loop;
    use crate::symbols::SymbolTable;

    fn sample() -> (SymbolTable, Block) {
        let mut t = SymbolTable::new();
        let i = t.var("i");
        let x = t.var("x");
        let a = t.array("A");
        let use_a =
            |k: i64| Expr::Elem(ArrayRef::new(a, Expr::add(Expr::Scalar(i), Expr::Const(k))));
        let body = vec![
            Stmt::Assign(Assign::new(
                LValue::Elem(ArrayRef::new(a, Expr::Scalar(i))),
                Expr::add(use_a(-1), Expr::Scalar(x)),
            )),
            Stmt::If {
                cond: Cond::new(use_a(0), RelOp::Eq, Expr::Const(0)),
                then_blk: vec![Stmt::Assign(Assign::new(LValue::Scalar(x), use_a(2)))],
                else_blk: vec![],
            },
        ];
        (t, body)
    }

    #[test]
    fn walks_every_assign() {
        let (_, b) = sample();
        let mut n = 0;
        for_each_assign(&b, &mut |_| n += 1);
        assert_eq!(n, 2);
        assert_eq!(
            count_stmts(&b),
            StmtCounts {
                assigns: 2,
                ifs: 1,
                loops: 0
            }
        );
    }

    #[test]
    fn uses_and_defs() {
        let (_, b) = sample();
        let mut defs = 0;
        let mut uses = 0;
        for_each_assign(&b, &mut |a| {
            defs += usize::from(assign_def(a).is_some());
            uses += assign_uses(a).len();
        });
        assert_eq!(defs, 1);
        assert_eq!(uses, 2); // A[i-1] in stmt 1, A[i+2] in the then-branch
    }

    #[test]
    fn modified_scalars_includes_nested_ivs() {
        let (mut t, mut b) = sample();
        let j = t.var("j");
        b.push(Stmt::Do(Loop {
            iv: j,
            lower: 1.into(),
            upper: 5.into(),
            step: 1,
            body: vec![],
        }));
        let m = modified_scalars(&b);
        assert!(m.contains(&t.var("x")));
        assert!(m.contains(&j));
        assert!(!m.contains(&t.var("i")));
    }
}
