//! Symbolic linear expressions.
//!
//! The framework's subscript arithmetic (paper §3.1.2, §3.6) works on
//! expressions of the form `c₀ + Σ cₖ·sₖ` where the `sₖ` are *symbolic
//! constants*: induction variables of enclosing loops, array dimension sizes,
//! or other scalars that are loop-invariant with respect to the loop under
//! analysis. [`LinExpr`] represents such expressions exactly, supports ring
//! arithmetic, and can decide symbolic ratios such as
//! `(N·i + N + j) − (N·i + j) = N = 1·N`, which is what makes the
//! linearized multi-dimensional analysis of §3.6 work.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::symbols::VarId;

/// A linear expression `constant + Σ coeff·symbol` with exact `i64`
/// coefficients over symbolic constants.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    /// Constant term.
    constant: i64,
    /// Symbol coefficients; invariant: no zero coefficients are stored.
    terms: BTreeMap<VarId, i64>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        Self {
            constant: c,
            terms: BTreeMap::new(),
        }
    }

    /// A single symbol with coefficient one.
    pub fn symbol(s: VarId) -> Self {
        Self::term(s, 1)
    }

    /// A single `coeff·symbol` term.
    pub fn term(s: VarId, coeff: i64) -> Self {
        let mut terms = BTreeMap::new();
        if coeff != 0 {
            terms.insert(s, coeff);
        }
        Self { constant: 0, terms }
    }

    /// The constant term.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Coefficient of `s` (zero if absent).
    pub fn coeff(&self, s: VarId) -> i64 {
        self.terms.get(&s).copied().unwrap_or(0)
    }

    /// Iterates over the non-zero `(symbol, coefficient)` terms.
    pub fn iter_terms(&self) -> impl Iterator<Item = (VarId, i64)> + '_ {
        self.terms.iter().map(|(&s, &c)| (s, c))
    }

    /// True if the expression is the literal zero.
    pub fn is_zero(&self) -> bool {
        self.constant == 0 && self.terms.is_empty()
    }

    /// True if the expression contains no symbols.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The value if the expression is symbol-free.
    pub fn as_constant(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.constant)
    }

    /// True if the expression mentions symbol `s`.
    pub fn mentions(&self, s: VarId) -> bool {
        self.terms.contains_key(&s)
    }

    /// Multiplies by an integer scalar.
    pub fn scaled(&self, k: i64) -> Self {
        if k == 0 {
            return Self::zero();
        }
        let mut out = self.clone();
        out.constant = out
            .constant
            .checked_mul(k)
            .expect("linear expression coefficient overflow");
        for c in out.terms.values_mut() {
            *c = c
                .checked_mul(k)
                .expect("linear expression coefficient overflow");
        }
        out
    }

    /// Substitutes a linear expression for a symbol.
    pub fn substitute(&self, s: VarId, replacement: &LinExpr) -> Self {
        let c = self.coeff(s);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&s);
        out + replacement.scaled(c)
    }

    /// Decides the exact rational ratio `self / other`, if one exists.
    ///
    /// Returns a reduced `(num, den)` with `den > 0` such that
    /// `self · den == other · num` as polynomials. Returns `None` when
    /// `other` is zero or when `self` is not a rational multiple of `other`.
    ///
    /// This is the decision procedure behind the symbolic evaluation of
    /// `k(i)` in the paper's preserve functions: for linearized
    /// multi-dimensional subscripts, both the numerator and the coefficient
    /// `a₁` may be symbolic, and a recurrence is detected exactly when the
    /// ratio is a rational constant.
    pub fn ratio(&self, other: &LinExpr) -> Option<(i64, i64)> {
        if other.is_zero() {
            return None;
        }
        if self.is_zero() {
            return Some((0, 1));
        }
        // Pick a pivot coefficient pair to propose a ratio, then verify it on
        // every coefficient via cross-multiplication in i128.
        let (num, den) = if other.constant != 0 {
            (self.constant, other.constant)
        } else {
            // `other` has at least one symbolic term because it is non-zero.
            let (&s, &oc) = other.terms.iter().next().expect("non-zero linexpr");
            (self.coeff(s), oc)
        };
        if num == 0 && !self.is_zero() && den != 0 {
            // Proposed ratio 0 but self is non-zero: only consistent if the
            // pivot slot of self is genuinely 0 while others are not — then
            // no uniform ratio exists unless all slots verify below.
        }
        let lhs_ok = |a: i64, b: i64| (a as i128) * (den as i128) == (b as i128) * (num as i128);
        if !lhs_ok(self.constant, other.constant) {
            return None;
        }
        let mut symbols: Vec<VarId> = self.terms.keys().copied().collect();
        symbols.extend(other.terms.keys().copied());
        symbols.sort_unstable();
        symbols.dedup();
        for s in symbols {
            if !lhs_ok(self.coeff(s), other.coeff(s)) {
                return None;
            }
        }
        Some(reduce(num, den))
    }

    /// Renders the expression using a name resolver for symbols.
    pub fn display_with<'a, F>(&'a self, namer: F) -> LinExprDisplay<'a, F>
    where
        F: Fn(VarId) -> String,
    {
        LinExprDisplay { expr: self, namer }
    }
}

/// Reduces a fraction to lowest terms with positive denominator.
fn reduce(num: i64, den: i64) -> (i64, i64) {
    assert!(den != 0, "zero denominator");
    let g = gcd(num.unsigned_abs(), den.unsigned_abs()) as i64;
    let (mut n, mut d) = (num / g, den / g);
    if d < 0 {
        n = -n;
        d = -d;
    }
    (n, d)
}

fn gcd(a: u64, b: u64) -> u64 {
    if a == 0 && b == 0 {
        return 1;
    }
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        out.constant = out
            .constant
            .checked_add(rhs.constant)
            .expect("linear expression constant overflow");
        for (s, c) in rhs.terms {
            let e = out.terms.entry(s).or_insert(0);
            *e = e
                .checked_add(c)
                .expect("linear expression coefficient overflow");
            if *e == 0 {
                out.terms.remove(&s);
            }
        }
        out
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scaled(-1)
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: i64) -> LinExpr {
        self.scaled(rhs)
    }
}

impl From<i64> for LinExpr {
    fn from(c: i64) -> Self {
        LinExpr::constant(c)
    }
}

impl From<VarId> for LinExpr {
    fn from(s: VarId) -> Self {
        LinExpr::symbol(s)
    }
}

/// Helper returned by [`LinExpr::display_with`].
pub struct LinExprDisplay<'a, F> {
    expr: &'a LinExpr,
    namer: F,
}

impl<F> fmt::Display for LinExprDisplay<'_, F>
where
    F: Fn(VarId) -> String,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (s, c) in self.expr.iter_terms() {
            let name = (self.namer)(s);
            if first {
                match c {
                    1 => write!(f, "{name}")?,
                    -1 => write!(f, "-{name}")?,
                    _ => write!(f, "{c}*{name}")?,
                }
                first = false;
            } else {
                let sign = if c < 0 { '-' } else { '+' };
                let mag = c.unsigned_abs();
                if mag == 1 {
                    write!(f, " {sign} {name}")?;
                } else {
                    write!(f, " {sign} {mag}*{name}")?;
                }
            }
        }
        let c = self.expr.constant_part();
        if first {
            write!(f, "{c}")?;
        } else if c > 0 {
            write!(f, " + {c}")?;
        } else if c < 0 {
            write!(f, " - {}", c.unsigned_abs())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u32) -> VarId {
        VarId(n)
    }

    #[test]
    fn arithmetic_normalizes_zero_terms() {
        let e = LinExpr::term(s(0), 3) + LinExpr::term(s(0), -3) + LinExpr::constant(5);
        assert!(e.is_constant());
        assert_eq!(e.as_constant(), Some(5));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = LinExpr::term(s(0), 2) + LinExpr::constant(7) + LinExpr::term(s(1), -4);
        let b = LinExpr::term(s(1), 9) + LinExpr::constant(-3);
        let c = a.clone() + b.clone();
        assert_eq!(c - b, a);
    }

    #[test]
    fn ratio_of_constants() {
        let a = LinExpr::constant(6);
        let b = LinExpr::constant(4);
        assert_eq!(a.ratio(&b), Some((3, 2)));
        assert_eq!(b.ratio(&a), Some((2, 3)));
    }

    #[test]
    fn ratio_of_symbolic_multiple() {
        // (2N + 4) / (N + 2) = 2
        let n = s(5);
        let a = LinExpr::term(n, 2) + LinExpr::constant(4);
        let b = LinExpr::term(n, 1) + LinExpr::constant(2);
        assert_eq!(a.ratio(&b), Some((2, 1)));
    }

    #[test]
    fn ratio_detects_non_multiple() {
        let n = s(5);
        let a = LinExpr::term(n, 2) + LinExpr::constant(3);
        let b = LinExpr::term(n, 1) + LinExpr::constant(2);
        assert_eq!(a.ratio(&b), None);
    }

    #[test]
    fn ratio_with_zero() {
        let n = s(5);
        let z = LinExpr::zero();
        let b = LinExpr::symbol(n);
        assert_eq!(z.ratio(&b), Some((0, 1)));
        assert_eq!(b.ratio(&z), None);
    }

    #[test]
    fn ratio_n_over_n() {
        // The paper's Fig. 4 case: (N+j) - j = N, and N/N = 1.
        let n = s(1);
        let num = LinExpr::symbol(n);
        assert_eq!(num.ratio(&LinExpr::symbol(n)), Some((1, 1)));
    }

    #[test]
    fn substitute_replaces_symbol() {
        // 2j + 3, j := i + 1  =>  2i + 5
        let (i, j) = (s(0), s(1));
        let e = LinExpr::term(j, 2) + LinExpr::constant(3);
        let r = LinExpr::symbol(i) + LinExpr::constant(1);
        let out = e.substitute(j, &r);
        assert_eq!(out.coeff(i), 2);
        assert_eq!(out.coeff(j), 0);
        assert_eq!(out.constant_part(), 5);
    }

    #[test]
    fn display_formats() {
        let e = LinExpr::term(s(0), 1) + LinExpr::term(s(1), -2) + LinExpr::constant(-7);
        let txt = format!("{}", e.display_with(|v| format!("s{}", v.0)));
        assert_eq!(txt, "s0 - 2*s1 - 7");
        assert_eq!(
            format!("{}", LinExpr::zero().display_with(|_| String::new())),
            "0"
        );
    }
}
