//! Pretty printer that renders programs back into the loop DSL.
//!
//! The output of [`print_program`] re-parses to a structurally identical
//! program (verified by a round-trip property test), which makes it suitable
//! both for diagnostics and for golden tests that compare transformed loops
//! against the paper's figures.

use std::fmt::Write;

use crate::expr::{BinOp, Cond, Expr, RelOp};
use crate::stmt::{ArrayRef, Block, LValue, Program, Stmt};
use crate::symbols::SymbolTable;

/// Renders a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    print_block(&p.symbols, &p.body, 0, &mut out);
    out
}

/// Renders a statement block at the given indentation depth.
pub fn print_block(symbols: &SymbolTable, block: &Block, depth: usize, out: &mut String) {
    for stmt in block {
        print_stmt(symbols, stmt, depth, out);
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_stmt(symbols: &SymbolTable, stmt: &Stmt, depth: usize, out: &mut String) {
    match stmt {
        Stmt::Assign(a) => {
            indent(depth, out);
            match &a.lhs {
                LValue::Scalar(v) => out.push_str(symbols.var_name(*v)),
                LValue::Elem(r) => print_ref(symbols, r, out),
            }
            out.push_str(" := ");
            print_expr(symbols, &a.rhs, 0, out);
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            indent(depth, out);
            out.push_str("if ");
            print_cond(symbols, cond, out);
            out.push_str(" then\n");
            print_block(symbols, then_blk, depth + 1, out);
            if !else_blk.is_empty() {
                indent(depth, out);
                out.push_str("else\n");
                print_block(symbols, else_blk, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("end\n");
        }
        Stmt::Do(l) => {
            indent(depth, out);
            let _ = write!(out, "do {} = ", symbols.var_name(l.iv));
            print_expr(symbols, &l.lower.to_expr(), 0, out);
            out.push_str(", ");
            print_expr(symbols, &l.upper.to_expr(), 0, out);
            if l.step != 1 {
                let _ = write!(out, ", {}", l.step);
            }
            out.push('\n');
            print_block(symbols, &l.body, depth + 1, out);
            indent(depth, out);
            out.push_str("end\n");
        }
    }
}

fn print_cond(symbols: &SymbolTable, c: &Cond, out: &mut String) {
    print_expr(symbols, &c.lhs, 0, out);
    out.push_str(match c.op {
        RelOp::Eq => " == ",
        RelOp::Ne => " != ",
        RelOp::Lt => " < ",
        RelOp::Le => " <= ",
        RelOp::Gt => " > ",
        RelOp::Ge => " >= ",
    });
    print_expr(symbols, &c.rhs, 0, out);
}

/// Renders an array reference like `A[i+1, j]`.
pub fn print_ref(symbols: &SymbolTable, r: &ArrayRef, out: &mut String) {
    out.push_str(symbols.array_name(r.array));
    out.push('[');
    for (k, s) in r.subs.iter().enumerate() {
        if k > 0 {
            out.push_str(", ");
        }
        print_expr(symbols, s, 0, out);
    }
    out.push(']');
}

/// Renders an array reference to a fresh string.
pub fn ref_to_string(symbols: &SymbolTable, r: &ArrayRef) -> String {
    let mut s = String::new();
    print_ref(symbols, r, &mut s);
    s
}

/// Renders an expression to a fresh string.
pub fn expr_to_string(symbols: &SymbolTable, e: &Expr) -> String {
    let mut s = String::new();
    print_expr(symbols, e, 0, &mut s);
    s
}

// Precedence levels: 0 = additive, 1 = multiplicative, 2 = atom.
fn print_expr(symbols: &SymbolTable, e: &Expr, min_prec: u8, out: &mut String) {
    match e {
        Expr::Const(n) => {
            if *n < 0 && min_prec > 0 {
                let _ = write!(out, "({n})");
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Expr::Scalar(v) => out.push_str(symbols.var_name(*v)),
        Expr::Elem(r) => print_ref(symbols, r, out),
        Expr::Bin(op, l, r) => {
            let (prec, sym, right_bump) = match op {
                BinOp::Add => (0, " + ", 0),
                BinOp::Sub => (0, " - ", 1),
                BinOp::Mul => (1, " * ", 1),
                BinOp::Div => (1, " / ", 2),
            };
            let need_parens = prec < min_prec;
            if need_parens {
                out.push('(');
            }
            print_expr(symbols, l, prec, out);
            out.push_str(sym);
            print_expr(symbols, r, prec + right_bump, out);
            if need_parens {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Strips statement ids so that structural equality ignores numbering.
    fn normalize_text(src: &str) -> String {
        let p = parse_program(src).unwrap();
        print_program(&p)
    }

    #[test]
    fn roundtrip_is_stable() {
        let src = "do i = 1, UB
  C[i+2] := C[i] * 2;
  B[2*i] := C[i] + x;
  if C[i] == 0 then C[i] := B[i-1]; end
  B[i] := C[i+1];
end";
        let once = normalize_text(src);
        let twice = normalize_text(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn parenthesization_is_minimal_but_correct() {
        let src = "do i = 1, 10 A[i] := (i + 1) * 2 - i * (3 - i); end";
        let p = parse_program(src).unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("(i + 1) * 2 - i * (3 - i)"), "{printed}");
        // And it still parses to the same thing.
        assert_eq!(printed, normalize_text(&printed));
    }

    #[test]
    fn subtraction_associativity_preserved() {
        // (a - b) - c prints without parens; a - (b - c) must keep them.
        let src = "do i = 1, 10 A[i] := i - (x - 1); end";
        let printed = normalize_text(src);
        assert!(printed.contains("i - (x - 1)"), "{printed}");
    }
}
