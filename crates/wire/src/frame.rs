//! The `AFWIRE01` binary frame: length-prefixed, CRC-framed, one frame
//! per request or response.
//!
//! ```text
//! ┌────────────────────────────── one frame ──────────────────────────┐
//! │ magic "AFWIRE01" (8 bytes)                                        │
//! │ version u8 (= 1)                                                  │
//! │ tag u8 (request verb or response tag, see `proto`)                │
//! │ payload_len LEB128 varint                                         │
//! │ crc32(payload) u32 LE                                             │
//! │ payload (payload_len bytes)                                       │
//! └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every frame carries the magic, so framing is stateless: a reader can
//! validate each frame independently, and protocol auto-detection only
//! needs the first bytes of a connection ([`detect`]).
//!
//! The decoder enforces the payload size cap **from the length prefix,
//! before allocating**: a frame whose declared length exceeds the cap is
//! reported as [`FrameEvent::Oversized`] and its payload is discarded
//! chunk-by-chunk in bounded memory — mirroring the JSON transport's
//! `FrameReader` discipline — after which the stream stays in sync and
//! the connection stays usable. Corrupted framing (bad magic, bad
//! version, malformed length, CRC mismatch) is unrecoverable on a binary
//! stream and surfaces as a [`FrameError`]; the connection should close.

use std::io::{self, Read};

use crate::codec::{put_varint, DecodeError, Reader};
use crate::crc::crc32;

/// Leading bytes of every binary frame.
pub const MAGIC: [u8; 8] = *b"AFWIRE01";
/// Protocol version carried after the magic.
pub const VERSION: u8 = 1;
/// Longest possible frame header: magic + version + tag + 10-byte varint
/// + CRC.
pub const MAX_HEADER_LEN: usize = 8 + 1 + 1 + 10 + 4;

/// Why a binary stream became undecodable. Unlike an oversized payload
/// (a well-framed frame that is merely too big), these mean the framing
/// itself cannot be trusted; the connection should be closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first bytes were not the `AFWIRE01` magic.
    BadMagic,
    /// The version byte was not [`VERSION`].
    BadVersion(u8),
    /// The payload length varint was malformed.
    BadLength,
    /// The payload did not match its CRC.
    BadCrc,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic (expected AFWIRE01)"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadLength => write!(f, "malformed payload length"),
            FrameError::BadCrc => write!(f, "payload CRC mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// What [`FrameDecoder::next`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete, CRC-validated frame.
    Frame {
        /// The tag byte (request verb or response tag).
        tag: u8,
        /// The validated payload.
        payload: Vec<u8>,
    },
    /// A well-framed payload whose declared length exceeds the cap. The
    /// payload was **not** allocated; it is discarded as it streams in,
    /// and the next frame decodes normally.
    Oversized {
        /// The tag byte of the rejected frame.
        tag: u8,
        /// The length its prefix declared.
        declared: u64,
    },
}

/// Encodes one frame around `payload`.
pub fn encode_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAX_HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(tag);
    put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// How the first bytes of a connection classify its protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detect {
    /// The prefix matches the binary magic (all 8 bytes seen).
    Binary,
    /// The prefix diverges from the magic: newline-framed JSON.
    Json,
    /// Fewer than 8 bytes seen, all matching the magic so far.
    NeedMore,
}

/// Classifies a connection from its first bytes. Binary requires the full
/// 8-byte magic; any earlier divergence means JSON (a JSON request is an
/// object, so its first byte `{` — or any hostile byte — diverges at
/// position 0 unless the client really is speaking `AFWIRE01`).
pub fn detect(prefix: &[u8]) -> Detect {
    let n = prefix.len().min(MAGIC.len());
    if prefix[..n] != MAGIC[..n] {
        return Detect::Json;
    }
    if prefix.len() >= MAGIC.len() {
        Detect::Binary
    } else {
        Detect::NeedMore
    }
}

/// An incremental frame decoder with a hard payload cap, suitable for a
/// nonblocking event loop: feed it whatever bytes arrived, then drain
/// events.
pub struct FrameDecoder {
    max_payload: usize,
    buf: Vec<u8>,
    /// Remaining bytes of an oversized payload being discarded.
    skip: u64,
}

impl FrameDecoder {
    /// A decoder rejecting payloads longer than `max_payload` (from the
    /// length prefix, before any allocation).
    pub fn new(max_payload: usize) -> Self {
        FrameDecoder {
            max_payload,
            buf: Vec::new(),
            skip: 0,
        }
    }

    /// Appends newly received bytes. While discarding an oversized
    /// payload, consumed bytes are never buffered — memory stays bounded
    /// by one read chunk plus one frame header.
    pub fn extend(&mut self, mut bytes: &[u8]) {
        if self.skip > 0 {
            let d = (self.skip).min(bytes.len() as u64) as usize;
            self.skip -= d as u64;
            bytes = &bytes[d..];
        }
        if !bytes.is_empty() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes currently buffered (payload in flight).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next event, `Ok(None)` when more bytes are needed.
    /// Errors are sticky in practice: the stream is desynced and the
    /// caller should close the connection.
    // Not `Iterator`: `Ok(None)` means "need more bytes", not exhaustion,
    // and the error must stop iteration — neither fits the trait contract.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<FrameEvent>, FrameError> {
        // Finish discarding an oversized payload that was partly buffered.
        if self.skip > 0 {
            let d = (self.skip).min(self.buf.len() as u64) as usize;
            self.buf.drain(..d);
            self.skip -= d as u64;
            if self.skip > 0 {
                return Ok(None);
            }
        }
        // Early magic check: reject as soon as any prefix byte diverges.
        let n = self.buf.len().min(MAGIC.len());
        if self.buf[..n] != MAGIC[..n] {
            return Err(FrameError::BadMagic);
        }
        let mut r = Reader::new(&self.buf);
        let header = (|| -> Result<Option<(u8, u64, u32, usize)>, FrameError> {
            match r.bytes(MAGIC.len()) {
                Ok(_) => {}
                Err(_) => return Ok(None),
            }
            let version = match r.u8() {
                Ok(v) => v,
                Err(_) => return Ok(None),
            };
            if version != VERSION {
                return Err(FrameError::BadVersion(version));
            }
            let tag = match r.u8() {
                Ok(t) => t,
                Err(_) => return Ok(None),
            };
            let len = match r.varint() {
                Ok(l) => l,
                Err(DecodeError::Truncated) => return Ok(None),
                Err(_) => return Err(FrameError::BadLength),
            };
            let crc = match r.bytes(4) {
                Ok(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
                Err(_) => return Ok(None),
            };
            let header_len = self.buf.len() - r.remaining();
            Ok(Some((tag, len, crc, header_len)))
        })()?;
        let Some((tag, len, crc, header_len)) = header else {
            return Ok(None);
        };
        if len > self.max_payload as u64 {
            // Reject from the prefix: consume the header, discard the
            // payload as it arrives, never allocate it.
            self.buf.drain(..header_len);
            self.skip = len;
            let d = (self.skip).min(self.buf.len() as u64) as usize;
            self.buf.drain(..d);
            self.skip -= d as u64;
            return Ok(Some(FrameEvent::Oversized { tag, declared: len }));
        }
        let len = len as usize;
        if self.buf.len() < header_len + len {
            return Ok(None);
        }
        let payload = self.buf[header_len..header_len + len].to_vec();
        self.buf.drain(..header_len + len);
        if crc32(&payload) != crc {
            return Err(FrameError::BadCrc);
        }
        Ok(Some(FrameEvent::Frame { tag, payload }))
    }
}

/// Reads exactly one frame from a blocking reader (the client side).
/// Framing errors and oversized payloads surface as
/// `io::ErrorKind::InvalidData`.
pub fn read_frame(reader: &mut impl Read, max_payload: usize) -> io::Result<(u8, Vec<u8>)> {
    let invalid = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
    let mut head = [0u8; 10];
    reader.read_exact(&mut head)?;
    if head[..8] != MAGIC {
        return Err(invalid(FrameError::BadMagic.to_string()));
    }
    if head[8] != VERSION {
        return Err(invalid(FrameError::BadVersion(head[8]).to_string()));
    }
    let tag = head[9];
    // Varint length, one byte at a time.
    let mut len: u64 = 0;
    let mut byte = [0u8; 1];
    for shift in (0..64).step_by(7) {
        reader.read_exact(&mut byte)?;
        let bits = (byte[0] & 0x7F) as u64;
        if shift == 63 && bits > 1 {
            return Err(invalid(FrameError::BadLength.to_string()));
        }
        len |= bits << shift;
        if byte[0] & 0x80 == 0 {
            break;
        }
        if shift == 63 {
            return Err(invalid(FrameError::BadLength.to_string()));
        }
    }
    if len > max_payload as u64 {
        return Err(invalid(format!("frame payload of {len} bytes exceeds cap")));
    }
    let mut crc_bytes = [0u8; 4];
    reader.read_exact(&mut crc_bytes)?;
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    if crc32(&payload) != u32::from_le_bytes(crc_bytes) {
        return Err(invalid(FrameError::BadCrc.to_string()));
    }
    Ok((tag, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_whole_and_byte_by_byte() {
        let frame = encode_frame(0x02, b"hello payload");
        // Whole.
        let mut d = FrameDecoder::new(1 << 20);
        d.extend(&frame);
        match d.next().unwrap().unwrap() {
            FrameEvent::Frame { tag, payload } => {
                assert_eq!(tag, 0x02);
                assert_eq!(payload, b"hello payload");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(d.next().unwrap(), None);
        // One byte at a time.
        let mut d = FrameDecoder::new(1 << 20);
        let mut got = 0;
        for b in &frame {
            d.extend(std::slice::from_ref(b));
            while let Some(ev) = d.next().unwrap() {
                assert!(matches!(ev, FrameEvent::Frame { .. }));
                got += 1;
            }
        }
        assert_eq!(got, 1);
    }

    #[test]
    fn oversized_is_rejected_from_the_prefix_without_allocation() {
        // Header declaring 1 GiB: the decoder must reject before the
        // payload exists, and keep memory bounded while it streams past.
        let mut head = Vec::new();
        head.extend_from_slice(&MAGIC);
        head.push(VERSION);
        head.push(0x02);
        put_varint(&mut head, 1 << 30);
        head.extend_from_slice(&0u32.to_le_bytes());
        let mut d = FrameDecoder::new(4096);
        d.extend(&head);
        assert_eq!(
            d.next().unwrap(),
            Some(FrameEvent::Oversized {
                tag: 0x02,
                declared: 1 << 30
            })
        );
        // Stream the (discarded) payload through in chunks, then a good
        // frame: memory stays bounded and the stream resyncs.
        let chunk = vec![0xAB; 64 * 1024];
        let mut sent = 0u64;
        while sent < 1 << 30 {
            let n = chunk.len().min(((1u64 << 30) - sent) as usize);
            d.extend(&chunk[..n]);
            sent += n as u64;
            assert!(
                d.buffered() <= chunk.len(),
                "decoder buffered a rejected payload"
            );
            assert_eq!(d.next().unwrap(), None);
        }
        let good = encode_frame(0x01, b"ok");
        d.extend(&good);
        assert!(matches!(
            d.next().unwrap(),
            Some(FrameEvent::Frame { tag: 0x01, .. })
        ));
    }

    #[test]
    fn corrupt_framing_is_an_error() {
        // Bad magic.
        let mut d = FrameDecoder::new(4096);
        d.extend(b"XFWIRE01");
        assert_eq!(d.next(), Err(FrameError::BadMagic));
        // Early divergence: one wrong byte is enough.
        let mut d = FrameDecoder::new(4096);
        d.extend(b"AX");
        assert_eq!(d.next(), Err(FrameError::BadMagic));
        // Bad version.
        let mut d = FrameDecoder::new(4096);
        let mut f = encode_frame(0x01, b"x");
        f[8] = 9;
        d.extend(&f);
        assert_eq!(d.next(), Err(FrameError::BadVersion(9)));
        // Bad CRC.
        let mut d = FrameDecoder::new(4096);
        let mut f = encode_frame(0x01, b"payload");
        let n = f.len();
        f[n - 1] ^= 0x40;
        d.extend(&f);
        assert_eq!(d.next(), Err(FrameError::BadCrc));
    }

    #[test]
    fn truncation_never_panics_and_stays_pending() {
        let frame = encode_frame(0x02, b"some payload here");
        for cut in 0..frame.len() {
            let mut d = FrameDecoder::new(4096);
            d.extend(&frame[..cut]);
            assert_eq!(d.next().unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn detect_classifies_prefixes() {
        assert_eq!(detect(b"{\"verb\""), Detect::Json);
        assert_eq!(detect(b"AFWIRE01"), Detect::Binary);
        assert_eq!(detect(b"AFWIRE0"), Detect::NeedMore);
        assert_eq!(detect(b"AFWIRE0X"), Detect::Json);
        assert_eq!(detect(b""), Detect::NeedMore);
        assert_eq!(detect(b"A"), Detect::NeedMore);
        assert_eq!(detect(b"B"), Detect::Json);
    }

    #[test]
    fn blocking_read_frame_round_trips() {
        let frame = encode_frame(0x03, b"stats please");
        let mut cursor = &frame[..];
        let (tag, payload) = read_frame(&mut cursor, 1 << 20).unwrap();
        assert_eq!((tag, payload.as_slice()), (0x03, &b"stats please"[..]));
        // Oversized via blocking read is InvalidData, not an allocation.
        let mut head = Vec::new();
        head.extend_from_slice(&MAGIC);
        head.push(VERSION);
        head.push(0x02);
        put_varint(&mut head, u64::MAX / 2);
        head.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = &head[..];
        let err = read_frame(&mut cursor, 4096).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
