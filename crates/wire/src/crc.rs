//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven, built at
//! compile time — the workspace stays zero-dependency.
//!
//! One implementation for both users: every record of the store's segment
//! log and every frame of the binary wire protocol carries the CRC of its
//! payload, so a corrupted byte is detected rather than trusted.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (IEEE reflected, init and final XOR `0xFFFFFFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = b"some record payload".to_vec();
        let mut b = a.clone();
        b[4] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
