//! Binary protocol messages: what goes inside an `AFWIRE01` frame.
//!
//! One request frame yields exactly one response frame. Requests carry a
//! client-chosen `id` that the response echoes, so a pipelining client can
//! match responses without relying on ordering (the server does preserve
//! per-connection order, but the id makes the contract checkable).
//!
//! Analysis reports travel as **opaque store-codec bytes**
//! (`arrayflow-store`'s `encode_report`): the server ships the stored
//! encoding directly on a cache hit and the client decodes it with the
//! same shared codec — no re-serialization on the hot path.
//!
//! ```text
//! request tags            response tags
//!   0x01 Ping               0x81 Ok   (body kind: 0 text, 1 analyze,
//!   0x02 Analyze                       2 session, 3 delta)
//!   0x03 Stats               0x82 Err  (kind byte + message)
//!   0x04 Metrics
//!   0x05 Compact
//!   0x06 Shutdown
//!   0x07 Health
//!   0x08 Replicate
//!   0x09 Open
//!   0x0A Delta
//!   0x0B Custom
//! ```
//!
//! `Health` is the cluster router's failover probe: a cheap liveness +
//! identity check answered inline (text body with the node id). `Replicate`
//! is node-to-node: it carries a batch of store-codec record frames from a
//! primary to its designated replica, shipped verbatim so the replica's
//! cache and segment log stay warm for failover.

use crate::codec::{put_bytes, put_u128, put_varint, DecodeError, DecodeResult, Reader};

/// Request frame tags.
pub const TAG_PING: u8 = 0x01;
/// Analyze: source and/or fingerprint.
pub const TAG_ANALYZE: u8 = 0x02;
/// Service stats snapshot (JSON text body).
pub const TAG_STATS: u8 = 0x03;
/// Metrics exposition (text body).
pub const TAG_METRICS: u8 = 0x04;
/// Persistent-tier compaction.
pub const TAG_COMPACT: u8 = 0x05;
/// Graceful shutdown.
pub const TAG_SHUTDOWN: u8 = 0x06;
/// Node health / identity probe (router failover probes).
pub const TAG_HEALTH: u8 = 0x07;
/// Replication batch: store-codec record frames for a replica.
pub const TAG_REPLICATE: u8 = 0x08;
/// Open an interactive analysis session.
pub const TAG_OPEN: u8 = 0x09;
/// Apply a single-statement edit to an open session.
pub const TAG_DELTA: u8 = 0x0A;
/// Analyze under a user-specified (G, K) problem spec.
pub const TAG_CUSTOM: u8 = 0x0B;
/// Response frame tag: success.
pub const TAG_OK: u8 = 0x81;
/// Response frame tag: error.
pub const TAG_ERR: u8 = 0x82;

/// Request-tag bit marking a frame that carries a deadline prefix: the
/// payload starts with a varint `deadline_ms` budget, followed by the
/// ordinary payload for the base tag (`tag & !TAG_DEADLINE_BIT`).
///
/// Servers predating this extension reject the unknown tag with a clean
/// in-sync protocol error rather than misparsing the frame, so a client
/// may always send the prefix and fall back on `protocol` errors.
pub const TAG_DEADLINE_BIT: u8 = 0x40;

/// Upper clamp on a wire-supplied deadline budget (one hour). Absurd
/// values — hostile or buggy — are clamped here at decode rather than
/// trusted; the server then takes `min(budget, its own cap)`.
pub const MAX_DEADLINE_MS: u64 = 3_600_000;

/// Splits a possibly-deadline-prefixed request frame into its base tag,
/// the clamped deadline budget (if the [`TAG_DEADLINE_BIT`] is set), and
/// the byte offset at which the base payload starts.
///
/// Without the bit this is a zero-cost passthrough. With it, the varint
/// prefix is decoded strictly (truncated or overlong varints fail) and
/// clamped to [`MAX_DEADLINE_MS`]; a zero budget is preserved — it means
/// "already expired" and lets a server shed the request before parsing.
pub fn strip_deadline(tag: u8, payload: &[u8]) -> DecodeResult<(u8, Option<u64>, usize)> {
    if tag & TAG_DEADLINE_BIT == 0 {
        return Ok((tag, None, 0));
    }
    let mut r = Reader::new(payload);
    let ms = r.varint()?;
    let consumed = payload.len() - r.remaining();
    Ok((
        tag & !TAG_DEADLINE_BIT,
        Some(ms.min(MAX_DEADLINE_MS)),
        consumed,
    ))
}

/// Prefixes a request payload with a deadline budget: returns the tag
/// with [`TAG_DEADLINE_BIT`] set and the payload with the varint
/// `deadline_ms` (clamped to [`MAX_DEADLINE_MS`]) prepended. The inverse
/// of [`strip_deadline`].
pub fn with_deadline(tag: u8, payload: &[u8], deadline_ms: u64) -> (u8, Vec<u8>) {
    let mut out = Vec::with_capacity(payload.len() + 10);
    put_varint(&mut out, deadline_ms.min(MAX_DEADLINE_MS));
    out.extend_from_slice(payload);
    (tag | TAG_DEADLINE_BIT, out)
}

const BODY_TEXT: u8 = 0;
const BODY_ANALYZE: u8 = 1;
const BODY_SESSION: u8 = 2;
const BODY_DELTA: u8 = 3;

const FLAG_SOURCE: u8 = 1 << 0;
const FLAG_FINGERPRINT: u8 = 1 << 1;
const FLAG_PROBLEMS: u8 = 1 << 2;
const FLAG_DISTANCE: u8 = 1 << 3;

/// An analyze request: at least one of `source` / `fingerprint` must be
/// present. With only a fingerprint the server probes its caches and
/// never parses; with source it can always fall back to full analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeRequest {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// Canonical 128-bit fingerprint (little-endian bytes) of the
    /// program's outermost loop, if the client precomputed it.
    pub fingerprint: Option<[u8; 16]>,
    /// Problem-set bits (engine `ProblemSet::bits`); server default when
    /// absent.
    pub problems: Option<u8>,
    /// Dependence distance bound; server default when absent.
    pub distance_bound: Option<u64>,
    /// DSL program source (UTF-8), if supplied.
    pub source: Option<Vec<u8>>,
}

/// The valid range of a custom-spec byte: six low bits (`CustomSpec::bits`
/// in `arrayflow-core`), and the two G bits must not both be clear — a
/// problem that generates nothing solves to bottom everywhere and is
/// always a client error. Checked at decode so hostile bytes die here.
fn custom_spec_byte_is_valid(spec: u8) -> bool {
    spec & !0b11_1111 == 0 && spec & 0b11 != 0
}

/// A custom-problem request: like [`AnalyzeRequest`], but instead of a
/// canned problem selection it carries a (G, K) spec byte (core
/// `CustomSpec::bits`) naming which site roles generate and kill, the
/// direction, and the confluence mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomRequest {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// `CustomSpec::bits` encoding of the (G, K) problem.
    pub spec: u8,
    /// Canonical 128-bit fingerprint (little-endian bytes), if the client
    /// precomputed it; enables the probe-only fast path.
    pub fingerprint: Option<[u8; 16]>,
    /// Dependence distance bound; server default when absent.
    pub distance_bound: Option<u64>,
    /// DSL program source (UTF-8), if supplied.
    pub source: Option<Vec<u8>>,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Echoed id.
        id: u64,
    },
    /// Run (or look up) an analysis.
    Analyze(AnalyzeRequest),
    /// Service stats snapshot.
    Stats {
        /// Echoed id.
        id: u64,
    },
    /// Metrics exposition.
    Metrics {
        /// Echoed id.
        id: u64,
    },
    /// Compact the persistent tier.
    Compact {
        /// Echoed id.
        id: u64,
    },
    /// Graceful shutdown.
    Shutdown {
        /// Echoed id.
        id: u64,
    },
    /// Health / identity probe: answered inline with a text body carrying
    /// the node id, so a router can both check liveness and verify it is
    /// talking to the node it thinks it is.
    Health {
        /// Echoed id.
        id: u64,
    },
    /// A replication batch: opaque store-codec record frames (the same
    /// `len | crc32 | payload` framing the segment log uses), shipped
    /// verbatim from a primary node to its designated replica.
    Replicate {
        /// Echoed id.
        id: u64,
        /// Concatenated record frames, validated record-by-record by the
        /// receiver (CRC + decode) before anything is applied.
        batch: Vec<u8>,
    },
    /// Open an interactive analysis session over a program: analyze it
    /// once, retain the converged state, answer with a session id.
    Open {
        /// Echoed id.
        id: u64,
        /// DSL program source (UTF-8).
        source: Vec<u8>,
    },
    /// Apply one single-statement edit to an open session and re-converge.
    Delta {
        /// Echoed id.
        id: u64,
        /// The session id returned by the open (or previous delta)
        /// response.
        session: u64,
        /// Canonical fingerprint of the session's *current* loop
        /// (little-endian bytes), as returned by the previous response.
        /// The cluster router routes deltas by this base fingerprint, so
        /// a session stays pinned to the shard that holds it.
        fingerprint: [u8; 16],
        /// Statement id (textual order, 0-based) of the assignment to
        /// replace.
        stmt: u64,
        /// Replacement statement source (UTF-8).
        text: Vec<u8>,
    },
    /// Run (or look up) an analysis under a user-specified (G, K) spec.
    Custom(CustomRequest),
}

impl Request {
    /// The frame tag for this request.
    pub fn tag(&self) -> u8 {
        match self {
            Request::Ping { .. } => TAG_PING,
            Request::Analyze(_) => TAG_ANALYZE,
            Request::Stats { .. } => TAG_STATS,
            Request::Metrics { .. } => TAG_METRICS,
            Request::Compact { .. } => TAG_COMPACT,
            Request::Shutdown { .. } => TAG_SHUTDOWN,
            Request::Health { .. } => TAG_HEALTH,
            Request::Replicate { .. } => TAG_REPLICATE,
            Request::Open { .. } => TAG_OPEN,
            Request::Delta { .. } => TAG_DELTA,
            Request::Custom(_) => TAG_CUSTOM,
        }
    }

    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Ping { id }
            | Request::Stats { id }
            | Request::Metrics { id }
            | Request::Compact { id }
            | Request::Shutdown { id }
            | Request::Health { id }
            | Request::Replicate { id, .. }
            | Request::Open { id, .. }
            | Request::Delta { id, .. } => *id,
            Request::Analyze(a) => a.id,
            Request::Custom(c) => c.id,
        }
    }

    /// Encodes the frame payload (not the frame itself).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping { id }
            | Request::Stats { id }
            | Request::Metrics { id }
            | Request::Compact { id }
            | Request::Shutdown { id }
            | Request::Health { id } => put_varint(&mut out, *id),
            Request::Replicate { id, batch } => {
                put_varint(&mut out, *id);
                put_bytes(&mut out, batch);
            }
            Request::Open { id, source } => {
                put_varint(&mut out, *id);
                put_bytes(&mut out, source);
            }
            Request::Delta {
                id,
                session,
                fingerprint,
                stmt,
                text,
            } => {
                put_varint(&mut out, *id);
                put_varint(&mut out, *session);
                out.extend_from_slice(fingerprint);
                put_varint(&mut out, *stmt);
                put_bytes(&mut out, text);
            }
            Request::Analyze(a) => {
                put_varint(&mut out, a.id);
                let mut flags = 0u8;
                if a.source.is_some() {
                    flags |= FLAG_SOURCE;
                }
                if a.fingerprint.is_some() {
                    flags |= FLAG_FINGERPRINT;
                }
                if a.problems.is_some() {
                    flags |= FLAG_PROBLEMS;
                }
                if a.distance_bound.is_some() {
                    flags |= FLAG_DISTANCE;
                }
                out.push(flags);
                if let Some(fp) = &a.fingerprint {
                    out.extend_from_slice(fp);
                }
                if let Some(p) = a.problems {
                    out.push(p);
                }
                if let Some(d) = a.distance_bound {
                    put_varint(&mut out, d);
                }
                if let Some(src) = &a.source {
                    put_bytes(&mut out, src);
                }
            }
            Request::Custom(c) => {
                put_varint(&mut out, c.id);
                out.push(c.spec);
                let mut flags = 0u8;
                if c.source.is_some() {
                    flags |= FLAG_SOURCE;
                }
                if c.fingerprint.is_some() {
                    flags |= FLAG_FINGERPRINT;
                }
                if c.distance_bound.is_some() {
                    flags |= FLAG_DISTANCE;
                }
                out.push(flags);
                if let Some(fp) = &c.fingerprint {
                    out.extend_from_slice(fp);
                }
                if let Some(d) = c.distance_bound {
                    put_varint(&mut out, d);
                }
                if let Some(src) = &c.source {
                    put_bytes(&mut out, src);
                }
            }
        }
        out
    }

    /// Decodes a request from a frame's tag + payload.
    pub fn decode(tag: u8, payload: &[u8]) -> DecodeResult<Request> {
        let mut r = Reader::new(payload);
        let id = r.varint()?;
        let req = match tag {
            TAG_PING => Request::Ping { id },
            TAG_STATS => Request::Stats { id },
            TAG_METRICS => Request::Metrics { id },
            TAG_COMPACT => Request::Compact { id },
            TAG_SHUTDOWN => Request::Shutdown { id },
            TAG_HEALTH => Request::Health { id },
            TAG_REPLICATE => Request::Replicate {
                id,
                batch: r.len_bytes()?.to_vec(),
            },
            TAG_OPEN => Request::Open {
                id,
                source: r.len_bytes()?.to_vec(),
            },
            TAG_DELTA => {
                let session = r.varint()?;
                let mut fingerprint = [0u8; 16];
                fingerprint.copy_from_slice(r.bytes(16)?);
                let stmt = r.varint()?;
                let text = r.len_bytes()?.to_vec();
                Request::Delta {
                    id,
                    session,
                    fingerprint,
                    stmt,
                    text,
                }
            }
            TAG_ANALYZE => {
                let flags = r.u8()?;
                if flags & !(FLAG_SOURCE | FLAG_FINGERPRINT | FLAG_PROBLEMS | FLAG_DISTANCE) != 0 {
                    return Err(DecodeError::BadDiscriminant);
                }
                let fingerprint = if flags & FLAG_FINGERPRINT != 0 {
                    let mut fp = [0u8; 16];
                    fp.copy_from_slice(r.bytes(16)?);
                    Some(fp)
                } else {
                    None
                };
                let problems = if flags & FLAG_PROBLEMS != 0 {
                    Some(r.u8()?)
                } else {
                    None
                };
                let distance_bound = if flags & FLAG_DISTANCE != 0 {
                    Some(r.varint()?)
                } else {
                    None
                };
                let source = if flags & FLAG_SOURCE != 0 {
                    Some(r.len_bytes()?.to_vec())
                } else {
                    None
                };
                if fingerprint.is_none() && source.is_none() {
                    return Err(DecodeError::BadDiscriminant);
                }
                Request::Analyze(AnalyzeRequest {
                    id,
                    fingerprint,
                    problems,
                    distance_bound,
                    source,
                })
            }
            TAG_CUSTOM => {
                let spec = r.u8()?;
                if !custom_spec_byte_is_valid(spec) {
                    return Err(DecodeError::BadDiscriminant);
                }
                let flags = r.u8()?;
                if flags & !(FLAG_SOURCE | FLAG_FINGERPRINT | FLAG_DISTANCE) != 0 {
                    return Err(DecodeError::BadDiscriminant);
                }
                let fingerprint = if flags & FLAG_FINGERPRINT != 0 {
                    let mut fp = [0u8; 16];
                    fp.copy_from_slice(r.bytes(16)?);
                    Some(fp)
                } else {
                    None
                };
                let distance_bound = if flags & FLAG_DISTANCE != 0 {
                    Some(r.varint()?)
                } else {
                    None
                };
                let source = if flags & FLAG_SOURCE != 0 {
                    Some(r.len_bytes()?.to_vec())
                } else {
                    None
                };
                if fingerprint.is_none() && source.is_none() {
                    return Err(DecodeError::BadDiscriminant);
                }
                Request::Custom(CustomRequest {
                    id,
                    spec,
                    fingerprint,
                    distance_bound,
                    source,
                })
            }
            _ => return Err(DecodeError::BadDiscriminant),
        };
        r.finish()?;
        Ok(req)
    }
}

/// One analyzed loop: its canonical fingerprint plus the store-codec
/// report bytes, shipped verbatim from cache or store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopEntry {
    /// Canonical fingerprint (little-endian bytes).
    pub fingerprint: [u8; 16],
    /// `arrayflow-store` `encode_report` bytes.
    pub report: Vec<u8>,
}

/// A successful analyze response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeOk {
    /// Echoed request id.
    pub id: u64,
    /// One entry per analyzed loop, outermost-first.
    pub loops: Vec<LoopEntry>,
    /// Memo-cache hits for this request.
    pub cache_hits: u64,
    /// Memo-cache misses for this request.
    pub cache_misses: u64,
    /// Solver passes run.
    pub solver_passes: u64,
    /// Data-flow node visits.
    pub node_visits: u64,
}

/// A successful session-open response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOk {
    /// Echoed request id.
    pub id: u64,
    /// The opened session's id — pass it to subsequent deltas.
    pub session: u64,
    /// Canonical fingerprint of the session's loop (little-endian bytes);
    /// route subsequent deltas by this value.
    pub fingerprint: [u8; 16],
    /// Store-codec report bytes for the initial analysis.
    pub report: Vec<u8>,
}

/// A successful delta response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaOk {
    /// Echoed request id.
    pub id: u64,
    /// Echoed session id.
    pub session: u64,
    /// Canonical fingerprint of the loop *after* the edit — the base
    /// fingerprint for the next delta.
    pub fingerprint: [u8; 16],
    /// Store-codec report bytes for the edited loop.
    pub report: Vec<u8>,
    /// True when the edit forced a full re-analysis.
    pub fallback: bool,
    /// Lattice columns re-solved incrementally (0 on fallback).
    pub dirty_columns: u64,
    /// Total lattice columns across the instances.
    pub total_columns: u64,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Text body (ping/stats/metrics/compact/shutdown results).
    Text {
        /// Echoed request id.
        id: u64,
        /// UTF-8 body (JSON for stats, exposition text for metrics, …).
        text: String,
    },
    /// Analyze result.
    Analyze(AnalyzeOk),
    /// Session opened.
    Session(SessionOk),
    /// Delta applied.
    Delta(DeltaOk),
    /// Error.
    Err {
        /// Echoed request id.
        id: u64,
        /// Error kind byte (service `ErrorKind` wire value).
        kind: u8,
        /// Human-readable message.
        message: String,
    },
}

impl Response {
    /// The frame tag for this response.
    pub fn tag(&self) -> u8 {
        match self {
            Response::Err { .. } => TAG_ERR,
            _ => TAG_OK,
        }
    }

    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Text { id, .. } | Response::Err { id, .. } => *id,
            Response::Analyze(a) => a.id,
            Response::Session(s) => s.id,
            Response::Delta(d) => d.id,
        }
    }

    /// Encodes the frame payload (not the frame itself).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Text { id, text } => {
                put_varint(&mut out, *id);
                out.push(BODY_TEXT);
                put_bytes(&mut out, text.as_bytes());
            }
            Response::Analyze(a) => {
                put_varint(&mut out, a.id);
                out.push(BODY_ANALYZE);
                put_varint(&mut out, a.loops.len() as u64);
                for l in &a.loops {
                    put_u128(&mut out, u128::from_le_bytes(l.fingerprint));
                    put_bytes(&mut out, &l.report);
                }
                put_varint(&mut out, a.cache_hits);
                put_varint(&mut out, a.cache_misses);
                put_varint(&mut out, a.solver_passes);
                put_varint(&mut out, a.node_visits);
            }
            Response::Session(s) => {
                put_varint(&mut out, s.id);
                out.push(BODY_SESSION);
                put_varint(&mut out, s.session);
                put_u128(&mut out, u128::from_le_bytes(s.fingerprint));
                put_bytes(&mut out, &s.report);
            }
            Response::Delta(d) => {
                put_varint(&mut out, d.id);
                out.push(BODY_DELTA);
                put_varint(&mut out, d.session);
                put_u128(&mut out, u128::from_le_bytes(d.fingerprint));
                out.push(d.fallback as u8);
                put_varint(&mut out, d.dirty_columns);
                put_varint(&mut out, d.total_columns);
                put_bytes(&mut out, &d.report);
            }
            Response::Err { id, kind, message } => {
                put_varint(&mut out, *id);
                out.push(*kind);
                put_bytes(&mut out, message.as_bytes());
            }
        }
        out
    }

    /// Decodes a response from a frame's tag + payload.
    pub fn decode(tag: u8, payload: &[u8]) -> DecodeResult<Response> {
        let mut r = Reader::new(payload);
        let id = r.varint()?;
        let resp = match tag {
            TAG_OK => match r.u8()? {
                BODY_TEXT => {
                    let text = String::from_utf8(r.len_bytes()?.to_vec())
                        .map_err(|_| DecodeError::BadDiscriminant)?;
                    Response::Text { id, text }
                }
                BODY_ANALYZE => {
                    let n = r.count(17)?; // fingerprint + at least a length byte
                    let mut loops = Vec::with_capacity(n);
                    for _ in 0..n {
                        let fingerprint = r.u128()?.to_le_bytes();
                        let report = r.len_bytes()?.to_vec();
                        loops.push(LoopEntry {
                            fingerprint,
                            report,
                        });
                    }
                    let cache_hits = r.varint()?;
                    let cache_misses = r.varint()?;
                    let solver_passes = r.varint()?;
                    let node_visits = r.varint()?;
                    Response::Analyze(AnalyzeOk {
                        id,
                        loops,
                        cache_hits,
                        cache_misses,
                        solver_passes,
                        node_visits,
                    })
                }
                BODY_SESSION => {
                    let session = r.varint()?;
                    let fingerprint = r.u128()?.to_le_bytes();
                    let report = r.len_bytes()?.to_vec();
                    Response::Session(SessionOk {
                        id,
                        session,
                        fingerprint,
                        report,
                    })
                }
                BODY_DELTA => {
                    let session = r.varint()?;
                    let fingerprint = r.u128()?.to_le_bytes();
                    let fallback = match r.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(DecodeError::BadDiscriminant),
                    };
                    let dirty_columns = r.varint()?;
                    let total_columns = r.varint()?;
                    let report = r.len_bytes()?.to_vec();
                    Response::Delta(DeltaOk {
                        id,
                        session,
                        fingerprint,
                        report,
                        fallback,
                        dirty_columns,
                        total_columns,
                    })
                }
                _ => return Err(DecodeError::BadDiscriminant),
            },
            TAG_ERR => {
                let kind = r.u8()?;
                let message = String::from_utf8(r.len_bytes()?.to_vec())
                    .map_err(|_| DecodeError::BadDiscriminant)?;
                Response::Err { id, kind, message }
            }
            _ => return Err(DecodeError::BadDiscriminant),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = req.encode_payload();
        let back = Request::decode(req.tag(), &payload).unwrap();
        assert_eq!(back, req);
    }

    fn round_trip_response(resp: Response) {
        let payload = resp.encode_payload();
        let back = Response::decode(resp.tag(), &payload).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping { id: 0 });
        round_trip_request(Request::Stats { id: 7 });
        round_trip_request(Request::Metrics { id: u64::MAX });
        round_trip_request(Request::Compact { id: 3 });
        round_trip_request(Request::Shutdown { id: 4 });
        round_trip_request(Request::Health { id: 11 });
        round_trip_request(Request::Replicate {
            id: 12,
            batch: vec![0xDE, 0xAD, 0xBE, 0xEF],
        });
        round_trip_request(Request::Replicate {
            id: 13,
            batch: Vec::new(),
        });
        round_trip_request(Request::Analyze(AnalyzeRequest {
            id: 42,
            fingerprint: Some([9; 16]),
            problems: Some(0b1111),
            distance_bound: Some(8),
            source: Some(b"do i = 1, n\nend".to_vec()),
        }));
        round_trip_request(Request::Analyze(AnalyzeRequest {
            id: 1,
            fingerprint: Some([0; 16]),
            problems: None,
            distance_bound: None,
            source: None,
        }));
        round_trip_request(Request::Analyze(AnalyzeRequest {
            id: 2,
            fingerprint: None,
            problems: None,
            distance_bound: None,
            source: Some(b"x".to_vec()),
        }));
        round_trip_request(Request::Open {
            id: 14,
            source: b"do i = 1, 10 A[i] := 0; end".to_vec(),
        });
        round_trip_request(Request::Delta {
            id: 15,
            session: 7,
            fingerprint: [0xAB; 16],
            stmt: 3,
            text: b"A[i+1] := A[i];".to_vec(),
        });
        round_trip_request(Request::Delta {
            id: 16,
            session: u64::MAX,
            fingerprint: [0; 16],
            stmt: 0,
            text: Vec::new(),
        });
        round_trip_request(Request::Custom(CustomRequest {
            id: 17,
            spec: 0b11_0110, // live elements: G=uses, K=defs, backward, may
            fingerprint: Some([6; 16]),
            distance_bound: Some(8),
            source: Some(b"do i = 1, n A[i] := A[i]; end".to_vec()),
        }));
        round_trip_request(Request::Custom(CustomRequest {
            id: 18,
            spec: 0b00_0001, // G=defs, nothing kills, forward, must
            fingerprint: None,
            distance_bound: None,
            source: Some(b"x".to_vec()),
        }));
        round_trip_request(Request::Custom(CustomRequest {
            id: 19,
            spec: 0b00_0111,
            fingerprint: Some([0; 16]),
            distance_bound: None,
            source: None,
        }));
    }

    #[test]
    fn custom_spec_byte_validation_at_decode() {
        let payload_for = |spec: u8| {
            let mut payload = Vec::new();
            put_varint(&mut payload, 1); // id
            payload.push(spec);
            payload.push(FLAG_SOURCE);
            put_bytes(&mut payload, b"x");
            payload
        };
        // High bits beyond the six spec bits: rejected.
        assert_eq!(
            Request::decode(TAG_CUSTOM, &payload_for(0b100_0001)),
            Err(DecodeError::BadDiscriminant)
        );
        assert_eq!(
            Request::decode(TAG_CUSTOM, &payload_for(0xFF)),
            Err(DecodeError::BadDiscriminant)
        );
        // Empty G (nothing generates): rejected.
        assert_eq!(
            Request::decode(TAG_CUSTOM, &payload_for(0b00_0000)),
            Err(DecodeError::BadDiscriminant)
        );
        assert_eq!(
            Request::decode(TAG_CUSTOM, &payload_for(0b11_1100)),
            Err(DecodeError::BadDiscriminant)
        );
        // Every valid byte decodes.
        for spec in 0..=0b11_1111u8 {
            let ok = Request::decode(TAG_CUSTOM, &payload_for(spec)).is_ok();
            assert_eq!(ok, spec & 0b11 != 0, "spec {spec:#08b}");
        }
    }

    #[test]
    fn custom_without_source_or_fingerprint_is_rejected() {
        let mut payload = Vec::new();
        put_varint(&mut payload, 1);
        payload.push(0b00_0001);
        payload.push(0); // flags: neither source nor fingerprint
        assert_eq!(
            Request::decode(TAG_CUSTOM, &payload),
            Err(DecodeError::BadDiscriminant)
        );
        // Unknown flag bits (FLAG_PROBLEMS has no meaning here): rejected.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1);
        payload.push(0b00_0001);
        payload.push(FLAG_PROBLEMS);
        assert_eq!(
            Request::decode(TAG_CUSTOM, &payload),
            Err(DecodeError::BadDiscriminant)
        );
    }

    #[test]
    fn custom_hostile_bytes_do_not_panic() {
        // Truncation at every prefix of a full frame.
        let payload = Request::Custom(CustomRequest {
            id: 9,
            spec: 0b10_0101,
            fingerprint: Some([7; 16]),
            distance_bound: Some(4),
            source: Some(b"do i = 1, 2 A[i] := 0; end".to_vec()),
        })
        .encode_payload();
        for len in 0..payload.len() {
            assert!(
                Request::decode(TAG_CUSTOM, &payload[..len]).is_err(),
                "len {len}"
            );
        }
        // Trailing bytes rejected.
        let mut noisy = payload.clone();
        noisy.push(0);
        assert_eq!(
            Request::decode(TAG_CUSTOM, &noisy),
            Err(DecodeError::TrailingBytes)
        );
        // Source length prefix past the end of the payload.
        let mut p = Vec::new();
        put_varint(&mut p, 1);
        p.push(0b00_0011);
        p.push(FLAG_SOURCE);
        put_varint(&mut p, 1 << 40); // claimed length, no bytes follow
        assert!(Request::decode(TAG_CUSTOM, &p).is_err());
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Text {
            id: 5,
            text: "pong".into(),
        });
        round_trip_response(Response::Analyze(AnalyzeOk {
            id: 6,
            loops: vec![
                LoopEntry {
                    fingerprint: [1; 16],
                    report: vec![1, 2, 3, 4],
                },
                LoopEntry {
                    fingerprint: [2; 16],
                    report: vec![],
                },
            ],
            cache_hits: 10,
            cache_misses: 2,
            solver_passes: 3,
            node_visits: 999,
        }));
        round_trip_response(Response::Err {
            id: 7,
            kind: 2,
            message: "deadline exceeded".into(),
        });
        round_trip_response(Response::Session(SessionOk {
            id: 8,
            session: 77,
            fingerprint: [3; 16],
            report: vec![9, 8, 7],
        }));
        round_trip_response(Response::Delta(DeltaOk {
            id: 9,
            session: 77,
            fingerprint: [4; 16],
            report: vec![1],
            fallback: true,
            dirty_columns: 0,
            total_columns: 12,
        }));
        round_trip_response(Response::Delta(DeltaOk {
            id: 10,
            session: 1,
            fingerprint: [5; 16],
            report: Vec::new(),
            fallback: false,
            dirty_columns: 3,
            total_columns: 12,
        }));
    }

    #[test]
    fn hostile_session_frames_are_rejected() {
        // Delta with a truncated fingerprint.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1); // id
        put_varint(&mut payload, 2); // session
        payload.extend_from_slice(&[0u8; 8]); // half a fingerprint
        assert!(Request::decode(TAG_DELTA, &payload).is_err());

        // Delta response with a fallback byte that is neither 0 nor 1.
        let good = Response::Delta(DeltaOk {
            id: 1,
            session: 2,
            fingerprint: [0; 16],
            report: Vec::new(),
            fallback: false,
            dirty_columns: 0,
            total_columns: 0,
        });
        let mut payload = good.encode_payload();
        // Layout: varint id, kind byte, varint session, 16 fp bytes, fallback.
        let fallback_at = 1 + 1 + 1 + 16;
        payload[fallback_at] = 2;
        assert_eq!(
            Response::decode(TAG_OK, &payload),
            Err(DecodeError::BadDiscriminant)
        );

        // Open with trailing bytes.
        let mut payload = Request::Open {
            id: 1,
            source: b"x".to_vec(),
        }
        .encode_payload();
        payload.push(0);
        assert_eq!(
            Request::decode(TAG_OPEN, &payload),
            Err(DecodeError::TrailingBytes)
        );

        // Delta with a text length prefix past the end of the payload.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1);
        put_varint(&mut payload, 2);
        payload.extend_from_slice(&[0u8; 16]);
        put_varint(&mut payload, 0); // stmt
        put_varint(&mut payload, 100); // text length, no bytes follow
        assert!(Request::decode(TAG_DELTA, &payload).is_err());
    }

    #[test]
    fn analyze_without_source_or_fingerprint_is_rejected() {
        // flags = 0: neither source nor fingerprint.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1);
        payload.push(0);
        assert_eq!(
            Request::decode(TAG_ANALYZE, &payload),
            Err(DecodeError::BadDiscriminant)
        );
    }

    #[test]
    fn unknown_tags_and_flags_are_rejected() {
        assert!(Request::decode(0x7F, &[0]).is_err());
        assert!(Response::decode(0x00, &[0]).is_err());
        let mut payload = Vec::new();
        put_varint(&mut payload, 1);
        payload.push(0xF0); // unknown flag bits
        assert_eq!(
            Request::decode(TAG_ANALYZE, &payload),
            Err(DecodeError::BadDiscriminant)
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Ping { id: 1 }.encode_payload();
        payload.push(0);
        assert_eq!(
            Request::decode(TAG_PING, &payload),
            Err(DecodeError::TrailingBytes)
        );
        let mut payload = Request::Health { id: 1 }.encode_payload();
        payload.push(0);
        assert_eq!(
            Request::decode(TAG_HEALTH, &payload),
            Err(DecodeError::TrailingBytes)
        );
        let mut payload = Request::Replicate {
            id: 1,
            batch: vec![1, 2],
        }
        .encode_payload();
        payload.push(0);
        assert_eq!(
            Request::decode(TAG_REPLICATE, &payload),
            Err(DecodeError::TrailingBytes)
        );
    }

    #[test]
    fn deadline_prefix_round_trips_and_clamps() {
        let inner = Request::Ping { id: 9 }.encode_payload();
        let (tag, payload) = with_deadline(TAG_PING, &inner, 1500);
        assert_eq!(tag, TAG_PING | TAG_DEADLINE_BIT);
        let (base, budget, off) = strip_deadline(tag, &payload).unwrap();
        assert_eq!((base, budget), (TAG_PING, Some(1500)));
        assert_eq!(
            Request::decode(base, &payload[off..]),
            Ok(Request::Ping { id: 9 })
        );

        // Without the bit: passthrough, no budget, zero offset.
        assert_eq!(
            strip_deadline(TAG_ANALYZE, &[1, 2, 3]),
            Ok((TAG_ANALYZE, None, 0))
        );

        // Absurd budgets clamp at both ends of the pipe.
        let (tag, payload) = with_deadline(TAG_PING, &inner, u64::MAX);
        let (_, budget, _) = strip_deadline(tag, &payload).unwrap();
        assert_eq!(budget, Some(MAX_DEADLINE_MS));
        let mut hostile = Vec::new();
        put_varint(&mut hostile, u64::MAX);
        hostile.extend_from_slice(&inner);
        let (_, budget, _) = strip_deadline(TAG_PING | TAG_DEADLINE_BIT, &hostile).unwrap();
        assert_eq!(budget, Some(MAX_DEADLINE_MS));

        // Zero means "already expired" and is preserved, not dropped.
        let (tag, payload) = with_deadline(TAG_PING, &inner, 0);
        let (_, budget, _) = strip_deadline(tag, &payload).unwrap();
        assert_eq!(budget, Some(0));
    }

    #[test]
    fn hostile_deadline_prefixes_are_rejected() {
        // Empty payload with the deadline bit set: truncated varint.
        assert!(strip_deadline(TAG_PING | TAG_DEADLINE_BIT, &[]).is_err());
        // A varint that never terminates (all continuation bits set).
        assert!(strip_deadline(TAG_PING | TAG_DEADLINE_BIT, &[0xFF; 11]).is_err());
        // An overlong-but-terminated varint overflowing 64 bits.
        let mut p = vec![0xFF; 9];
        p.push(0x7F);
        assert!(strip_deadline(TAG_PING | TAG_DEADLINE_BIT, &p).is_err());
        // A valid prefix but garbage base payload still fails in decode.
        let (tag, payload) = with_deadline(TAG_OPEN, &[0xFF, 0xFF], 10);
        let (base, _, off) = strip_deadline(tag, &payload).unwrap();
        assert!(Request::decode(base, &payload[off..]).is_err());
    }

    #[test]
    fn replicate_truncated_batch_is_rejected() {
        // Length prefix claims more bytes than are present.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1);
        put_varint(&mut payload, 10);
        payload.extend_from_slice(&[1, 2, 3]);
        assert!(Request::decode(TAG_REPLICATE, &payload).is_err());
    }
}
