//! A zero-dependency readiness core over `poll(2)`.
//!
//! The workspace bans external crates, so instead of `libc` this module
//! declares the one C function it needs — `poll` is in every libc that
//! `std` already links on unix — alongside a `#[repr(C)]` `pollfd`
//! matching the POSIX layout (int fd, short events, short revents).
//!
//! [`Poller`] owns the interest list keyed by fd; callers re-register
//! interest to implement backpressure (drop `POLLIN` while a connection's
//! write buffer is over the high watermark, restore it when drained).
//! [`WakeHandle`] is a socketpair-based self-wake: worker threads finish
//! jobs asynchronously and must pull the event loop out of `poll`, so the
//! completion side writes one byte and the loop drains it.

#![cfg(unix)]

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readable interest / readiness.
pub const POLLIN: i16 = 0x001;
/// Writable interest / readiness.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (revents only).
pub const POLLNVAL: i16 = 0x020;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

extern "C" {
    // int poll(struct pollfd *fds, nfds_t nfds, int timeout);
    // nfds_t is unsigned long on Linux and unsigned int elsewhere; u64
    // with a small count is safe on LP64 unix targets either way.
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    // int listen(int sockfd, int backlog);
    fn listen(sockfd: RawFd, backlog: i32) -> i32;
}

/// Raises the accept backlog of an already-listening socket. POSIX
/// allows `listen(2)` to be re-called to change the backlog;
/// `std::net::TcpListener` hardcodes 128, which a server multiplexing
/// thousands of connections can overflow during a connect flood (SYNs
/// get dropped and clients stall in retransmit).
pub fn set_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    if unsafe { listen(fd, backlog) } == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// One readiness result from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The ready fd.
    pub fd: RawFd,
    /// Readiness bits (`POLLIN` / `POLLOUT` / `POLLERR` / `POLLHUP` /
    /// `POLLNVAL`).
    pub revents: i16,
}

impl Event {
    /// Readable (or peer closed — a read will observe EOF).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Writable.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// The fd is in an error state and should be closed.
    pub fn broken(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

/// An interest list over `poll(2)`.
pub struct Poller {
    fds: Vec<PollFd>,
}

impl Default for Poller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller {
    /// An empty interest list.
    pub fn new() -> Self {
        Poller { fds: Vec::new() }
    }

    /// Registers `fd` with `interest` bits; replaces any existing entry.
    pub fn register(&mut self, fd: RawFd, interest: i16) {
        if let Some(p) = self.fds.iter_mut().find(|p| p.fd == fd) {
            p.events = interest;
        } else {
            self.fds.push(PollFd {
                fd,
                events: interest,
                revents: 0,
            });
        }
    }

    /// Changes `fd`'s interest (no-op if unregistered).
    pub fn reregister(&mut self, fd: RawFd, interest: i16) {
        if let Some(p) = self.fds.iter_mut().find(|p| p.fd == fd) {
            p.events = interest;
        }
    }

    /// Removes `fd` from the interest list.
    pub fn deregister(&mut self, fd: RawFd) {
        self.fds.retain(|p| p.fd != fd);
    }

    /// Registered fd count.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the interest list is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Blocks until at least one fd is ready or `timeout` elapses
    /// (`None` = forever); fills `out` with the ready fds (clearing
    /// whatever it held — the caller's buffer is reused, never
    /// accumulated into). EINTR retries internally.
    pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<usize> {
        out.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        loop {
            for p in &mut self.fds {
                p.revents = 0;
            }
            let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u64, timeout_ms) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            let mut n = 0;
            for p in &self.fds {
                if p.revents != 0 {
                    out.push(Event {
                        fd: p.fd,
                        revents: p.revents,
                    });
                    n += 1;
                }
            }
            return Ok(n);
        }
    }
}

/// A self-wake channel: worker threads call [`Waker::wake`] to pull the
/// event loop out of `poll`; the loop registers [`WakeHandle::fd`] for
/// `POLLIN` and calls [`WakeHandle::drain`] when it fires.
pub struct WakeHandle {
    reader: UnixStream,
}

/// The sending side of a [`WakeHandle`]; cheap to clone across threads.
#[derive(Clone)]
pub struct Waker {
    writer: std::sync::Arc<UnixStream>,
}

/// Creates a connected wake pair.
pub fn wake_pair() -> io::Result<(WakeHandle, Waker)> {
    let (reader, writer) = UnixStream::pair()?;
    reader.set_nonblocking(true)?;
    writer.set_nonblocking(true)?;
    Ok((
        WakeHandle { reader },
        Waker {
            writer: std::sync::Arc::new(writer),
        },
    ))
}

impl WakeHandle {
    /// The fd to register for `POLLIN`.
    pub fn fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }

    /// Consumes all pending wake bytes (wakes coalesce).
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.reader.read(&mut buf), Ok(n) if n > 0) {}
    }
}

impl Waker {
    /// Wakes the event loop. A full pipe is fine — a wake is already
    /// pending — and a closed loop is fine too (it is shutting down).
    pub fn wake(&self) {
        let _ = (&*self.writer).write(&[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_reports_readable_socketpair() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut poller = Poller::new();
        poller.register(b.as_raw_fd(), POLLIN);
        // Nothing to read yet.
        let mut events = Vec::new();
        let n = poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert_eq!(n, 0);
        a.write_all(b"x").unwrap();
        let n = poller
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].fd, b.as_raw_fd());
        assert!(events[0].readable());
    }

    #[test]
    fn reregister_interest_controls_events() {
        let (mut a, b) = UnixStream::pair().unwrap();
        a.write_all(b"x").unwrap();
        let mut poller = Poller::new();
        // Interest 0: the pending byte must not surface as POLLIN.
        poller.register(b.as_raw_fd(), 0);
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.iter().all(|e| e.revents & POLLIN == 0));
        events.clear();
        poller.reregister(b.as_raw_fd(), POLLIN);
        let n = poller
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable());
    }

    #[test]
    fn waker_wakes_and_drain_coalesces() {
        let (mut handle, waker) = wake_pair().unwrap();
        let mut poller = Poller::new();
        poller.register(handle.fd(), POLLIN);
        let w2 = waker.clone();
        let t = std::thread::spawn(move || {
            for _ in 0..10 {
                w2.wake();
            }
        });
        let mut events = Vec::new();
        let n = poller
            .wait(Some(Duration::from_millis(2000)), &mut events)
            .unwrap();
        assert!(n >= 1);
        t.join().unwrap();
        handle.drain();
        // Fully drained: a subsequent wait times out.
        events.clear();
        let n = poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn wait_reuses_the_buffer_instead_of_accumulating() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut poller = Poller::new();
        poller.register(b.as_raw_fd(), POLLIN);
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert_eq!(events.len(), 1);
        // The byte is still unread, so the fd is ready again — but the
        // buffer must hold exactly this wait's events, not a growing
        // history (a long-lived loop would reprocess every stale event
        // each iteration, going quadratic).
        poller
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn deregister_removes_fd() {
        let (_a, b) = UnixStream::pair().unwrap();
        let mut poller = Poller::new();
        poller.register(b.as_raw_fd(), POLLIN);
        assert_eq!(poller.len(), 1);
        poller.deregister(b.as_raw_fd());
        assert!(poller.is_empty());
    }
}
