//! arrayflow-wire: the zero-dependency wire layer.
//!
//! Three pieces, layered bottom-up:
//!
//! * [`codec`] + [`crc`] — the shared LEB128/CRC-32 primitives extracted
//!   from `arrayflow-store` (PR 3). The store's segment log and the
//!   binary protocol now use one implementation, pinned by the store's
//!   byte-compatibility tests.
//! * [`frame`] — the `AFWIRE01` frame: magic, version, tag, LEB128
//!   payload length, CRC-32, payload. The incremental [`frame::FrameDecoder`]
//!   enforces the payload cap from the length prefix *before allocating*
//!   and skips oversized payloads in bounded memory, so a hostile peer
//!   cannot balloon the server. [`frame::detect`] classifies a connection
//!   as binary or newline-JSON from its first bytes.
//! * [`proto`] — typed request/response messages. Analysis reports travel
//!   as opaque store-codec bytes so cache hits are shipped verbatim,
//!   never re-serialized.
//! * [`event`] (unix) — a `poll(2)` readiness loop core ([`event::Poller`])
//!   plus a socketpair self-wake ([`event::wake_pair`]), used by the
//!   service's event-driven server to multiplex thousands of connections
//!   onto the worker pool without a thread per connection.
//!
//! This crate depends on nothing but `std` and knows nothing about the
//! engine: fingerprints are 16 bytes, reports are byte strings. The
//! mapping to engine types lives in `arrayflow-service`.

#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod event;
pub mod frame;
pub mod proto;

pub use codec::{DecodeError, DecodeResult, Reader};
pub use crc::crc32;
pub use frame::{detect, encode_frame, Detect, FrameDecoder, FrameError, FrameEvent};
