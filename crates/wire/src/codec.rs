//! Shared binary codec primitives: LEB128 varints and a bounds-checked
//! reader over untrusted bytes.
//!
//! These were born in `arrayflow-store` (PR 3) as the persistence codec
//! and are now the one implementation shared by the segment log *and* the
//! binary wire protocol — the store's byte-compatibility tests pin the
//! encoding, so existing `seg-*.log` segments and network peers agree on
//! every byte.
//!
//! Encoding is canonical: minimal varints, fixed field order,
//! little-endian fixed-width fields. Decoding is fully defensive: every
//! read is bounds-checked, sequence counts are validated against the
//! remaining input before allocation, and no input — however hostile —
//! panics.

/// Why a decode failed. The variants are diagnostic only — every failure
/// is handled the same way (reject the value, count it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value did.
    Truncated,
    /// A varint ran past 10 bytes or overflowed 64 bits.
    BadVarint,
    /// An enum discriminant, bool or bit set had an invalid value.
    BadDiscriminant,
    /// A sequence count exceeds what the remaining input could hold.
    BadCount,
    /// Decoding finished with input left over (the payload length lied).
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadVarint => write!(f, "malformed varint"),
            DecodeError::BadDiscriminant => write!(f, "invalid discriminant"),
            DecodeError::BadCount => write!(f, "sequence count exceeds input"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Shorthand for decode results.
pub type DecodeResult<T> = Result<T, DecodeError>;

// ---------------------------------------------------------------- write

/// Appends `v` as a minimal LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a `usize` as a varint.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_varint(out, v as u64);
}

/// Appends a `u128` as 16 little-endian bytes.
pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a bool as one byte (0 or 1).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Appends `bytes` prefixed with its varint length.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_usize(out, bytes.len());
    out.extend_from_slice(bytes);
}

// ----------------------------------------------------------------- read

/// A bounds-checked cursor over untrusted bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> DecodeResult<u8> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint (at most 10 bytes, must fit in 64 bits).
    pub fn varint(&mut self) -> DecodeResult<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = (byte & 0x7F) as u64;
            if shift == 63 && bits > 1 {
                return Err(DecodeError::BadVarint); // overflows u64
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(DecodeError::BadVarint)
    }

    /// Reads a varint that must fit a `usize`.
    pub fn usize(&mut self) -> DecodeResult<usize> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| DecodeError::BadVarint)
    }

    /// Reads a varint that must fit a `u32`.
    pub fn u32(&mut self) -> DecodeResult<u32> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| DecodeError::BadVarint)
    }

    /// Reads 16 little-endian bytes as a `u128`.
    pub fn u128(&mut self) -> DecodeResult<u128> {
        if self.remaining() < 16 {
            return Err(DecodeError::Truncated);
        }
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(&self.buf[self.pos..self.pos + 16]);
        self.pos += 16;
        Ok(u128::from_le_bytes(bytes))
    }

    /// Reads a strict bool (0 or 1).
    pub fn bool(&mut self) -> DecodeResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::BadDiscriminant),
        }
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a varint-length-prefixed byte string (the inverse of
    /// [`put_bytes`]); the length is checked against the remaining input
    /// before any slice is taken.
    pub fn len_bytes(&mut self) -> DecodeResult<&'a [u8]> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(DecodeError::BadCount);
        }
        self.bytes(n)
    }

    /// Reads a sequence count and sanity-checks it against the remaining
    /// input (each element takes at least `min_bytes`), so a corrupt
    /// count cannot drive a huge allocation.
    pub fn count(&mut self, min_bytes: usize) -> DecodeResult<usize> {
        let n = self.usize()?;
        if n.saturating_mul(min_bytes.max(1)) > self.remaining() {
            return Err(DecodeError::BadCount);
        }
        Ok(n)
    }

    /// Ends the decode, rejecting trailing bytes.
    pub fn finish(self) -> DecodeResult<()> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut r = Reader::new(&out);
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let bytes = [0xFF; 11];
        assert_eq!(Reader::new(&bytes).varint(), Err(DecodeError::BadVarint));
        // 10 bytes whose top bits overflow 64 bits.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert_eq!(Reader::new(&bytes).varint(), Err(DecodeError::BadVarint));
    }

    #[test]
    fn len_bytes_round_trips_and_bounds() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"payload");
        let mut r = Reader::new(&out);
        assert_eq!(r.len_bytes().unwrap(), b"payload");
        r.finish().unwrap();

        // A length claiming more than remains must fail before slicing.
        let mut bad = Vec::new();
        put_usize(&mut bad, 1_000_000);
        bad.push(1);
        assert_eq!(Reader::new(&bad).len_bytes(), Err(DecodeError::BadCount));
    }

    #[test]
    fn u128_round_trips() {
        let mut out = Vec::new();
        put_u128(&mut out, 0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let mut r = Reader::new(&out);
        assert_eq!(r.u128().unwrap(), 0x0123_4567_89ab_cdef_0011_2233_4455_6677);
    }
}
