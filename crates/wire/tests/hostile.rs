//! Hostility suite: the binary decoder must never panic, never allocate
//! proportionally to a hostile length prefix, and must classify every
//! malformed input as an error or a pending state — on any byte stream.

use arrayflow_wire::codec::put_varint;
use arrayflow_wire::frame::{
    detect, encode_frame, Detect, FrameDecoder, FrameError, FrameEvent, MAGIC, VERSION,
};
use arrayflow_wire::proto::{Request, Response};

/// Deterministic xorshift64* — the workspace is zero-dependency, so the
/// fuzz corpus is generated, not sampled.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn byte(&mut self) -> u8 {
        (self.next() >> 32) as u8
    }
}

fn drain(dec: &mut FrameDecoder) -> Result<Vec<FrameEvent>, FrameError> {
    let mut out = Vec::new();
    while let Some(ev) = dec.next()? {
        out.push(ev);
    }
    Ok(out)
}

#[test]
fn random_bytes_never_panic_the_frame_decoder() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    for round in 0..500 {
        let len = (rng.next() % 256) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.byte()).collect();
        let mut dec = FrameDecoder::new(4096);
        dec.extend(&bytes);
        // Any outcome is fine; panicking or ballooning is not.
        let _ = drain(&mut dec);
        assert!(dec.buffered() <= bytes.len(), "round {round}");
    }
}

#[test]
fn random_mutations_of_a_valid_frame_never_panic() {
    let base = encode_frame(0x02, b"do i = 1, n\n  a[i] = a[i-1]\nend");
    let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D);
    for _ in 0..2000 {
        let mut frame = base.clone();
        // Flip 1–4 random bytes.
        for _ in 0..(1 + rng.next() % 4) {
            let i = (rng.next() as usize) % frame.len();
            frame[i] ^= rng.byte() | 1;
        }
        let mut dec = FrameDecoder::new(1 << 16);
        dec.extend(&frame);
        // A mutated frame that still decodes must have survived the
        // CRC only if the payload bytes are untouched — either way,
        // decoding the payload as a message must also not panic.
        if let Ok(events) = drain(&mut dec) {
            for ev in events {
                if let FrameEvent::Frame { tag, payload } = ev {
                    let _ = Request::decode(tag, &payload);
                    let _ = Response::decode(tag, &payload);
                }
            }
        }
    }
}

#[test]
fn random_payloads_never_panic_message_decode() {
    let mut rng = Rng(0x0123_4567_89AB_CDEF);
    for _ in 0..2000 {
        let len = (rng.next() % 128) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.byte()).collect();
        let tag = rng.byte();
        let _ = Request::decode(tag, &payload);
        let _ = Response::decode(tag, &payload);
    }
}

#[test]
fn truncated_frames_pend_at_every_cut_point() {
    let frame = encode_frame(0x02, &vec![0x5A; 300]);
    for cut in 0..frame.len() {
        let mut dec = FrameDecoder::new(4096);
        dec.extend(&frame[..cut]);
        assert_eq!(dec.next(), Ok(None), "cut {cut}");
        // Completing the frame afterwards must still succeed.
        dec.extend(&frame[cut..]);
        assert!(matches!(
            dec.next(),
            Ok(Some(FrameEvent::Frame { tag: 0x02, .. }))
        ));
    }
}

#[test]
fn hostile_length_prefixes_never_allocate() {
    // Every declared length from just-over-cap to u64::MAX must be
    // rejected from the prefix without buffering the payload.
    for declared in [4097u64, 1 << 20, 1 << 40, u64::MAX / 2, u64::MAX] {
        let mut head = Vec::new();
        head.extend_from_slice(&MAGIC);
        head.push(VERSION);
        head.push(0x02);
        put_varint(&mut head, declared);
        head.extend_from_slice(&0u32.to_le_bytes());
        let mut dec = FrameDecoder::new(4096);
        dec.extend(&head);
        assert_eq!(
            dec.next(),
            Ok(Some(FrameEvent::Oversized {
                tag: 0x02,
                declared
            }))
        );
        assert_eq!(dec.buffered(), 0);
    }
}

#[test]
fn bad_version_and_bad_crc_are_terminal() {
    let mut bad_version = encode_frame(0x01, b"x");
    bad_version[8] = 2;
    let mut dec = FrameDecoder::new(4096);
    dec.extend(&bad_version);
    assert_eq!(dec.next(), Err(FrameError::BadVersion(2)));

    let mut bad_crc = encode_frame(0x01, b"payload");
    let n = bad_crc.len();
    bad_crc[n - 3] ^= 0x80;
    let mut dec = FrameDecoder::new(4096);
    dec.extend(&bad_crc);
    assert_eq!(dec.next(), Err(FrameError::BadCrc));
}

#[test]
fn detection_ambiguity_cases() {
    // Every strict prefix of the magic is ambiguous; anything that
    // diverges — even at the last byte — is JSON.
    for n in 0..MAGIC.len() {
        assert_eq!(detect(&MAGIC[..n]), Detect::NeedMore, "prefix len {n}");
        let mut diverged = MAGIC[..n + 1].to_vec();
        diverged[n] ^= 0xFF;
        assert_eq!(detect(&diverged), Detect::Json, "diverge at {n}");
    }
    assert_eq!(detect(&MAGIC), Detect::Binary);
    // A JSON request always starts with '{' (or whitespace) — never 'A'.
    assert_eq!(detect(b"{\"verb\":\"ping\"}"), Detect::Json);
    assert_eq!(detect(b" "), Detect::Json);
    // Longer than the magic: classification uses only the first 8 bytes.
    let mut long = MAGIC.to_vec();
    long.extend_from_slice(b"garbage-after-magic");
    assert_eq!(detect(&long), Detect::Binary);
}

#[test]
fn pipelined_frames_with_noise_boundaries_decode_in_order() {
    // Three frames concatenated, fed in pathological chunk sizes.
    let mut stream = Vec::new();
    for (tag, body) in [(0x01u8, &b"a"[..]), (0x03, b"bb"), (0x02, b"ccc")] {
        stream.extend_from_slice(&encode_frame(tag, body));
    }
    for chunk in [1usize, 2, 3, 7, 16] {
        let mut dec = FrameDecoder::new(4096);
        let mut tags = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.extend(piece);
            while let Some(ev) = dec.next().unwrap() {
                if let FrameEvent::Frame { tag, .. } = ev {
                    tags.push(tag);
                }
            }
        }
        assert_eq!(tags, vec![0x01, 0x03, 0x02], "chunk size {chunk}");
    }
}
