//! Integration tests: baselines versus the framework.

use arrayflow_analyses::analyze_loop;
use arrayflow_baselines::{
    baseline_is_subsumed, compare_reuses, dependence_based_reuses, reuses_from_state,
    simulate_available,
};
use arrayflow_ir::parse_program;

#[test]
fn baseline_matches_framework_on_straight_line_loop() {
    let p = parse_program("do i = 1, 100 A[i+2] := A[i] + x; end").unwrap();
    let a = analyze_loop(&p).unwrap();
    let cmp = compare_reuses(&a);
    assert_eq!(cmp.dependence_based, 1);
    assert_eq!(cmp.baseline_only, 0);
    assert!(baseline_is_subsumed(&a));
}

#[test]
fn baseline_misses_reuse_with_conditional_generator() {
    // The generator (a use of A[i]) sits under a conditional; the framework
    // still certifies the *def-generated* reuse below, while the baseline
    // skips conditional regions and use→use chains entirely.
    let p = parse_program(
        "do i = 1, 100
           B[i] := A[i] + 1;
           Z[i] := A[i] * 2;
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    let cmp = compare_reuses(&a);
    // use→use reuse of A[i] at distance 0: framework yes, baseline no.
    assert!(cmp.framework >= 1);
    assert_eq!(cmp.dependence_based, 0);
    assert!(cmp.framework_only >= 1);
}

#[test]
fn baseline_conservative_about_conditional_kills() {
    // Fig. 1 flavor: the conditional def C[i] makes the dependence-based
    // method drop every C-chain (it cannot bound the kill's distance),
    // while the framework keeps the distance-1 reuse C[i+1] ← C[i+2].
    let p = parse_program(
        "do i = 1, 100
           C[i+2] := C[i] * 2;
           if C[i] == 0 then C[i] := B[i-1]; end
           B[i] := C[i+1];
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    let base = dependence_based_reuses(&a);
    assert!(
        base.iter().all(|r| {
            let t = a.site_text(r.def_site);
            t != "C[i + 2]"
        }),
        "the conditional def forces the baseline to drop C chains: {base:?}"
    );
    let fw = a.reuse_pairs();
    assert!(
        fw.iter().any(|r| r.gen_is_def
            && a.site_text(r.gen_site) == "C[i + 2]"
            && a.site_text(r.use_site) == "C[i + 1]"
            && r.distance == 1),
        "framework keeps the distance-1 reuse"
    );
    assert!(baseline_is_subsumed(&a));
}

#[test]
fn instance_simulation_agrees_but_needs_startup_iterations() {
    let p = parse_program("do i = 1, 100 A[i+4] := A[i] + x; end").unwrap();
    let a = analyze_loop(&p).unwrap();
    let sim = simulate_available(&a.graph, &a.sites, 8, 100);
    assert!(sim.converged);
    // Start-up: the distance-4 recurrence (plus the age cap for the
    // never-killed def) needs ≥ 5 simulated iterations; the framework
    // needed only init + 2 passes.
    assert!(
        sim.iterations >= 5,
        "expected start-up iterations, got {}",
        sim.iterations
    );
    assert!(a.available.sol.stats.changing_passes <= 2);

    // Same reuses recovered.
    let sim_reuses = reuses_from_state(&a.graph, &a.sites, &sim);
    let fw: std::collections::BTreeSet<(usize, usize, u64)> = a
        .reuse_pairs()
        .into_iter()
        .map(|r| (r.gen_site, r.use_site, r.distance))
        .collect();
    let sim_set: std::collections::BTreeSet<(usize, usize, u64)> = sim_reuses.into_iter().collect();
    assert_eq!(fw, sim_set);
}

#[test]
fn instance_simulation_cap_loses_information() {
    // Reuse at distance 6 but cap 3: the simulation cannot see it.
    let p = parse_program("do i = 1, 100 A[i+6] := A[i] + x; end").unwrap();
    let a = analyze_loop(&p).unwrap();
    let sim = simulate_available(&a.graph, &a.sites, 3, 100);
    assert!(sim.converged);
    let sim_reuses = reuses_from_state(&a.graph, &a.sites, &sim);
    assert!(sim_reuses.is_empty(), "cap 3 hides the distance-6 reuse");
    // The framework sees it regardless.
    assert!(a.reuse_pairs().iter().any(|r| r.distance == 6));
}

#[test]
fn instance_simulation_handles_conditionals_like_the_framework() {
    let p = parse_program(
        "do i = 1, 100
           C[i+2] := C[i] * 2;
           if C[i] == 0 then C[i] := B[i-1]; end
           B[i] := C[i+1];
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    let sim = simulate_available(&a.graph, &a.sites, 8, 200);
    assert!(sim.converged);
    let sim_set: std::collections::BTreeSet<(usize, usize, u64)> =
        reuses_from_state(&a.graph, &a.sites, &sim)
            .into_iter()
            .collect();
    let fw: std::collections::BTreeSet<(usize, usize, u64)> = a
        .reuse_pairs()
        .into_iter()
        .map(|r| (r.gen_site, r.use_site, r.distance))
        .collect();
    assert_eq!(fw, sim_set, "both analyses agree on Fig. 1");
    // And the effort gap is visible.
    assert!(sim.node_visits > a.available.sol.stats.visits_to_fix(a.graph.len()));
}
