//! Explicit instance propagation, after Rau (LCPC '91) — the
//! reference-instance baseline the paper contrasts in §5.
//!
//! Instead of abstracting instances to a maximal distance, this analysis
//! propagates *sets of tagged instances* `(site, age)` around the loop,
//! one simulated iteration at a time, intersecting at joins (an all-paths
//! problem), until the entry state repeats or the age cap is hit. Its
//! iteration count is unbounded in general — it needs at least
//! `δ_max + 1` trips to see a recurrence at distance `δ_max` (the
//! "start-up iterations" the paper describes) and runs to the cap whenever
//! some reference is never killed. The framework computes the same facts
//! in three passes.

use std::collections::BTreeSet;

use arrayflow_analyses::Site;
use arrayflow_core::{Direction, GenRef, KillKind, KillSite, Mode, RefId};
use arrayflow_graph::LoopGraph;

/// A tagged instance: generator site index and its age in iterations.
pub type Instance = (usize, u64);

/// Result of the simulation.
#[derive(Debug, Clone)]
pub struct InstanceSim {
    /// Instances available at loop entry in the steady state (valid only
    /// if `converged`).
    pub entry_state: BTreeSet<Instance>,
    /// Number of simulated loop iterations until the entry state repeated.
    pub iterations: usize,
    /// Node visits performed (iterations × nodes).
    pub node_visits: usize,
    /// False when the age cap stopped the simulation before a steady state.
    pub converged: bool,
}

/// Runs the explicit-instance availability analysis (defs and uses
/// generate, defs kill — matching the framework's δ-available instance)
/// with ages capped at `cap`.
pub fn simulate_available(
    graph: &LoopGraph,
    sites: &[Site],
    cap: u64,
    max_iterations: usize,
) -> InstanceSim {
    // Precompute kill relations pairwise, reusing the core crate's exact
    // subscript machinery: killer site k kills instance (s, age) iff the
    // preserve constant of s w.r.t. k does not cover `age`.
    let kills: Vec<Option<&Site>> = sites
        .iter()
        .map(|s| if s.is_def { Some(s) } else { None })
        .collect();

    let mut entry: BTreeSet<Instance> = BTreeSet::new();
    let mut iterations = 0usize;
    let mut node_visits = 0usize;
    loop {
        iterations += 1;
        // Push the state through the acyclic body in reverse postorder,
        // keeping one set per node OUT.
        let mut outs: Vec<BTreeSet<Instance>> = vec![BTreeSet::new(); graph.len()];
        for &node in graph.rpo() {
            node_visits += 1;
            let mut inp: Option<BTreeSet<Instance>> = None;
            if node == graph.entry() {
                inp = Some(entry.clone());
            } else {
                for &p in graph.preds(node) {
                    let o = &outs[p.index()];
                    inp = Some(match inp {
                        None => o.clone(),
                        Some(acc) => acc.intersection(o).cloned().collect(),
                    });
                }
            }
            let mut state = inp.unwrap_or_default();
            // Kills.
            for (k_idx, killer) in kills.iter().enumerate() {
                let Some(killer) = killer else { continue };
                if killer.node != node {
                    continue;
                }
                state.retain(|&(s, age)| !may_kill(sites, graph, s, k_idx, age));
            }
            // Gens.
            for (s_idx, site) in sites.iter().enumerate() {
                if site.node == node && site.sub.is_some() {
                    state.insert((s_idx, 0));
                }
            }
            // Post-generate kills: a definition executing after a use in
            // the same node destroys the freshly generated instance when
            // the subscripts can coincide this iteration.
            for (k_idx, killer) in kills.iter().enumerate() {
                if killer.is_some() && sites[k_idx].node == node {
                    state.retain(|&(s, age)| {
                        !(age == 0
                            && sites[s].node == node
                            && may_post_kill(sites, graph, s, k_idx))
                    });
                }
            }
            outs[node.index()] = state;
        }
        // Cross the back edge: age everything, clamp at the cap.
        let aged: BTreeSet<Instance> = outs[graph.exit().index()]
            .iter()
            .filter_map(|&(s, age)| (age < cap).then_some((s, age + 1)))
            .collect();
        if aged == entry {
            return InstanceSim {
                entry_state: entry,
                iterations,
                node_visits,
                converged: true,
            };
        }
        entry = aged;
        if iterations >= max_iterations {
            return InstanceSim {
                entry_state: entry,
                iterations,
                node_visits,
                converged: false,
            };
        }
    }
}

/// Exact per-age kill decision via the core preserve machinery.
fn may_kill(sites: &[Site], graph: &LoopGraph, gen: usize, killer: usize, age: u64) -> bool {
    let gsite = &sites[gen];
    let ksite = &sites[killer];
    if gsite.aref.array != ksite.aref.array {
        return false;
    }
    let (g, k) = core_pair(sites, gen, killer);
    let _ = gsite;
    let _ = ksite;
    let p = arrayflow_core::preserve_constant(&g, &k, graph, Direction::Forward, Mode::Must);
    !p.covers(age)
}

/// Same-node, same-iteration kill by a definition executing *after* the
/// generating use (matching the framework's post-generate kill).
fn may_post_kill(sites: &[Site], graph: &LoopGraph, gen: usize, killer: usize) -> bool {
    let gsite = &sites[gen];
    let ksite = &sites[killer];
    if gsite.aref.array != ksite.aref.array || gen == killer {
        return false;
    }
    let applies = if gsite.in_summary {
        true
    } else {
        ksite.is_def && !gsite.is_def
    };
    if !applies {
        return false;
    }
    let (g, k) = core_pair(sites, gen, killer);
    let p = arrayflow_core::preserve::preserve_constant_with_pr(
        &g,
        &k,
        graph.ub,
        Direction::Forward,
        Mode::Must,
        0,
    );
    !p.covers(0)
}

fn core_pair(sites: &[Site], gen: usize, killer: usize) -> (GenRef, KillSite) {
    let gsite = &sites[gen];
    let ksite = &sites[killer];
    let g = GenRef {
        id: RefId(0),
        node: gsite.node,
        aref: gsite.aref.clone(),
        sub: gsite
            .sub
            .clone()
            .unwrap_or_else(|| arrayflow_ir::AffineSub::constant(0)),
        is_def: gsite.is_def,
        stmt: gsite.stmt,
        origin: Some(gen as u32),
    };
    let k = KillSite {
        node: ksite.node,
        array: ksite.aref.array,
        kind: match &ksite.sub {
            Some(s) => KillKind::Exact(s.clone()),
            None => KillKind::AllOfArray,
        },
        is_def: ksite.is_def,
        origin: Some(killer as u32),
    };
    (g, k)
}

/// Reuses recoverable from the converged steady state: a use at node `n`
/// reusing a generator instance of matching subscript at its age.
pub fn reuses_from_state(
    graph: &LoopGraph,
    sites: &[Site],
    sim: &InstanceSim,
) -> Vec<(usize, usize, u64)> {
    // Re-derive per-node IN states with the converged entry state, then
    // match uses (single extra pass).
    let mut outs: Vec<BTreeSet<Instance>> = vec![BTreeSet::new(); graph.len()];
    let mut ins: Vec<BTreeSet<Instance>> = vec![BTreeSet::new(); graph.len()];
    for &node in graph.rpo() {
        let mut inp: Option<BTreeSet<Instance>> = None;
        if node == graph.entry() {
            inp = Some(sim.entry_state.clone());
        } else {
            for &p in graph.preds(node) {
                let o = &outs[p.index()];
                inp = Some(match inp {
                    None => o.clone(),
                    Some(acc) => acc.intersection(o).cloned().collect(),
                });
            }
        }
        let mut state = inp.unwrap_or_default();
        ins[node.index()] = state.clone();
        for (k_idx, ksite) in sites.iter().enumerate() {
            if ksite.is_def && ksite.node == node {
                state.retain(|&(s, age)| !may_kill(sites, graph, s, k_idx, age));
            }
        }
        for (s_idx, site) in sites.iter().enumerate() {
            if site.node == node && site.sub.is_some() {
                state.insert((s_idx, 0));
            }
        }
        for (k_idx, ksite) in sites.iter().enumerate() {
            if ksite.is_def && ksite.node == node {
                state.retain(|&(s, age)| {
                    !(age == 0 && sites[s].node == node && may_post_kill(sites, graph, s, k_idx))
                });
            }
        }
        outs[node.index()] = state;
    }
    let mut found = Vec::new();
    for (u_idx, usite) in sites.iter().enumerate() {
        if usite.is_def {
            continue;
        }
        let Some(usub) = &usite.sub else { continue };
        for &(g_idx, age) in &ins[usite.node.index()] {
            let gsite = &sites[g_idx];
            if gsite.aref.array != usite.aref.array {
                continue;
            }
            let Some(gsub) = &gsite.sub else { continue };
            if arrayflow_analyses::constant_distance(gsub, usub) == Some(age) {
                found.push((g_idx, u_idx, age));
            }
        }
    }
    found.sort_unstable();
    found.dedup();
    found
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// Pass-count comparison for experiment E7.
pub struct EffortComparison {
    /// Node visits the framework needed (init + changing passes).
    pub framework_visits: usize,
    /// Node visits the instance simulation needed.
    pub simulation_visits: usize,
    /// Simulated iterations until convergence (or the cap).
    pub simulation_iterations: usize,
    /// Whether the simulation converged below its iteration cap.
    pub simulation_converged: bool,
}
