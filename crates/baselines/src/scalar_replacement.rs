//! Dependence-based scalar replacement, after Callahan, Carr and Kennedy
//! (PLDI '90) — the baseline the paper contrasts in §5.
//!
//! Scalar replacement driven by *conventional data dependence information*
//! finds reuse through loop-carried **flow dependences** (definition → use)
//! with consistent constant distance. Because the underlying dependence
//! information is flow-insensitive, the method here models the published
//! technique's limits:
//!
//! * only def → use chains are exploited (no use → use reuse — input
//!   dependences carry no values in the dependence graph);
//! * a generator inside conditional control flow is not usable (the
//!   original formulation targets straight-line loop bodies);
//! * *any* other definition that may touch the same array kills the chain
//!   unless the dependence tests prove independence — including
//!   definitions that only execute conditionally, since the dependence
//!   graph does not record conditions.
//!
//! The flow-sensitive framework subsumes all reuses found here; the E9
//! experiment quantifies the gap.

use arrayflow_analyses::{constant_distance, LoopAnalysis};
use arrayflow_core::Dist;

use crate::deps::{combined_test, Verdict};

/// A reuse found by dependence-based scalar replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepReuse {
    /// Site index of the definition providing the value.
    pub def_site: usize,
    /// Site index of the consuming use.
    pub use_site: usize,
    /// Constant dependence distance.
    pub distance: u64,
}

/// Runs the baseline over an analyzed loop (the analysis is used only for
/// its site table and graph — none of the flow-sensitive solutions).
pub fn dependence_based_reuses(analysis: &LoopAnalysis) -> Vec<DepReuse> {
    let sites = &analysis.sites;
    let ub = analysis.graph.ub;
    let mut out = Vec::new();
    for (def_idx, def) in sites.iter().enumerate() {
        if !def.is_def || def.in_summary {
            continue;
        }
        let Some(def_sub) = &def.sub else { continue };
        // Conditional generators are outside the model.
        if under_condition(analysis, def_idx) {
            continue;
        }
        for (use_idx, usite) in sites.iter().enumerate() {
            if usite.is_def || usite.in_summary || usite.aref.array != def.aref.array {
                continue;
            }
            let Some(use_sub) = &usite.sub else { continue };
            let Some(delta) = constant_distance(def_sub, use_sub) else {
                continue;
            };
            if delta == 0 && !analysis.graph.precedes(def.node, usite.node) {
                continue; // intra-iteration reuse needs the def first
            }
            // Kill check, flow-insensitively: any other def of the array
            // that may alias the flowing element kills the chain.
            let killed = sites.iter().enumerate().any(|(k, other)| {
                k != def_idx
                    && other.is_def
                    && other.aref.array == def.aref.array
                    && match &other.sub {
                        None => true,
                        Some(os) => combined_test(def_sub, os, ub) == Verdict::MayDepend,
                    }
            });
            if !killed {
                out.push(DepReuse {
                    def_site: def_idx,
                    use_site: use_idx,
                    distance: delta,
                });
            }
        }
    }
    out
}

/// True if the site's node is control-dependent on some test (reached by a
/// path that can bypass it).
fn under_condition(analysis: &LoopAnalysis, site: usize) -> bool {
    let node = analysis.sites[site].node;
    // A node is conditional iff some test node reaches the exit without
    // passing through it. Cheap approximation over the acyclic body: the
    // node is unconditional iff every path entry→exit passes through it,
    // i.e. it dominates exit in the body DAG. We check: entry reaches exit
    // only through `node` ⟺ there is no entry→exit path avoiding node.
    // Using the reachability bitsets: node is on all paths iff
    // (a) entry →* node →* exit, and (b) removing it disconnects — we
    // approximate with the test-node heuristic below, which is exact for
    // the structured bodies the builder produces.
    let g = &analysis.graph;
    for t in g.node_ids() {
        if matches!(g.node(t).kind, arrayflow_graph::NodeKind::Test { .. }) {
            // `node` is inside the conditional region of `t` iff t precedes
            // node and node does not post-dominate t — approximated as: some
            // successor of t reaches exit without reaching node.
            if g.precedes(t, node) {
                let bypass = g
                    .succs(t)
                    .iter()
                    .any(|&s| s != node && !g.precedes(s, node));
                if bypass {
                    return true;
                }
            }
        }
    }
    false
}

/// Comparison of the framework against the baseline on one loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseComparison {
    /// Reuses the flow-sensitive framework finds.
    pub framework: usize,
    /// Reuses dependence-based scalar replacement finds.
    pub dependence_based: usize,
    /// Found by the framework but not the baseline.
    pub framework_only: usize,
    /// Found by the baseline but not the framework (should be 0: the
    /// framework subsumes the baseline on sound inputs).
    pub baseline_only: usize,
}

/// Counts reuses found by each method.
pub fn compare_reuses(analysis: &LoopAnalysis) -> ReuseComparison {
    let fw: std::collections::HashSet<(usize, usize, u64)> = analysis
        .reuse_pairs()
        .into_iter()
        .map(|r| (r.gen_site, r.use_site, r.distance))
        .collect();
    let base: std::collections::HashSet<(usize, usize, u64)> = dependence_based_reuses(analysis)
        .into_iter()
        .map(|r| (r.def_site, r.use_site, r.distance))
        .collect();
    ReuseComparison {
        framework: fw.len(),
        dependence_based: base.len(),
        framework_only: fw.difference(&base).count(),
        baseline_only: base.difference(&fw).count(),
    }
}

/// Sanity guard used in tests: every baseline reuse must be certified by
/// the framework's must-available solution (otherwise the baseline would be
/// unsound — it never should be, given its conservative kill rule).
pub fn baseline_is_subsumed(analysis: &LoopAnalysis) -> bool {
    let fw: std::collections::HashSet<(usize, usize, u64)> = analysis
        .reuse_pairs()
        .into_iter()
        .map(|r| (r.gen_site, r.use_site, r.distance))
        .collect();
    dependence_based_reuses(analysis)
        .into_iter()
        .all(|r| fw.contains(&(r.def_site, r.use_site, r.distance)))
}

/// Convenience: the framework's must-available distance for a generator at
/// a use node (used by reports).
pub fn framework_distance(analysis: &LoopAnalysis, gen_site: usize, use_site: usize) -> Dist {
    let gen = analysis
        .available
        .gens()
        .find(|&(_, s)| s == gen_site)
        .map(|(id, _)| id);
    match gen {
        Some(id) => analysis.available.before(analysis.sites[use_site].node, id),
        None => Dist::Bottom,
    }
}
