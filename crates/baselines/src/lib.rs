#![warn(missing_docs)]
//! Baseline analyses the paper compares against (§1, §5):
//!
//! * [`deps`] — conventional flow-insensitive dependence tests (GCD,
//!   Banerjee);
//! * [`scalar_replacement`] — dependence-based scalar replacement in the
//!   style of Callahan/Carr/Kennedy (PLDI '90), which misses reuse under
//!   conditional control flow;
//! * [`instance_sim`] — explicit reference-instance propagation in the
//!   style of Rau (LCPC '91), whose iteration count grows with the reuse
//!   distance (and is unbounded without an age cap), where the framework
//!   needs three passes.

pub mod deps;
pub mod instance_sim;
pub mod scalar_replacement;

pub use deps::{banerjee_test, combined_test, gcd_test, Verdict};
pub use instance_sim::{reuses_from_state, simulate_available, EffortComparison, InstanceSim};
pub use scalar_replacement::{
    baseline_is_subsumed, compare_reuses, dependence_based_reuses, DepReuse, ReuseComparison,
};
