//! Conventional data dependence tests (the paper's §1 comparison point).
//!
//! These tests answer the *disambiguation* question — can two references
//! ever touch the same memory location — without any flow sensitivity:
//! the classical GCD test and Banerjee's bounds test for single-index
//! affine subscripts `a·i + b` over `i ∈ [1, UB]`.

use arrayflow_ir::AffineSub;

/// Verdict of a dependence test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The references can never overlap.
    Independent,
    /// The references may overlap (a dependence must be assumed).
    MayDepend,
}

/// The GCD test: `a₁·i − a₂·i' = b₂ − b₁` has an integer solution only if
/// `gcd(a₁, a₂)` divides `b₂ − b₁`. Ignores loop bounds.
pub fn gcd_test(r1: &AffineSub, r2: &AffineSub) -> Verdict {
    let (Some(a1), Some(b1)) = (r1.coef.as_constant(), r1.rest.as_constant()) else {
        return Verdict::MayDepend;
    };
    let (Some(a2), Some(b2)) = (r2.coef.as_constant(), r2.rest.as_constant()) else {
        return Verdict::MayDepend;
    };
    let g = gcd(a1.unsigned_abs(), a2.unsigned_abs());
    if g == 0 {
        // Both subscripts are invariant: overlap iff equal constants.
        return if b1 == b2 {
            Verdict::MayDepend
        } else {
            Verdict::Independent
        };
    }
    if (b2 - b1).unsigned_abs() % g == 0 {
        Verdict::MayDepend
    } else {
        Verdict::Independent
    }
}

/// Banerjee's bounds test: the equation `a₁·i − a₂·i' = b₂ − b₁` is
/// solvable over the real box `[1, UB]²` only if `b₂ − b₁` lies between the
/// extreme values of the left-hand side.
pub fn banerjee_test(r1: &AffineSub, r2: &AffineSub, ub: i64) -> Verdict {
    let (Some(a1), Some(b1)) = (r1.coef.as_constant(), r1.rest.as_constant()) else {
        return Verdict::MayDepend;
    };
    let (Some(a2), Some(b2)) = (r2.coef.as_constant(), r2.rest.as_constant()) else {
        return Verdict::MayDepend;
    };
    let diff = b2 - b1;
    let lo = min_of(a1, ub) - max_of(a2, ub);
    let hi = max_of(a1, ub) - min_of(a2, ub);
    if lo <= diff && diff <= hi {
        Verdict::MayDepend
    } else {
        Verdict::Independent
    }
}

/// Combined test: independent if *either* test proves independence.
pub fn combined_test(r1: &AffineSub, r2: &AffineSub, ub: Option<i64>) -> Verdict {
    if gcd_test(r1, r2) == Verdict::Independent {
        return Verdict::Independent;
    }
    if let Some(ub) = ub {
        if banerjee_test(r1, r2, ub) == Verdict::Independent {
            return Verdict::Independent;
        }
    }
    Verdict::MayDepend
}

fn min_of(a: i64, ub: i64) -> i64 {
    if a >= 0 {
        a
    } else {
        a * ub
    }
}

fn max_of(a: i64, ub: i64) -> i64 {
    if a >= 0 {
        a * ub
    } else {
        a
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(a: i64, b: i64) -> AffineSub {
        AffineSub::simple(a, b)
    }

    #[test]
    fn gcd_rules_out_parity_conflicts() {
        // 2i vs 2i' + 1: even vs odd, never equal.
        assert_eq!(gcd_test(&s(2, 0), &s(2, 1)), Verdict::Independent);
        assert_eq!(gcd_test(&s(2, 0), &s(2, 2)), Verdict::MayDepend);
        assert_eq!(gcd_test(&s(2, 0), &s(4, 2)), Verdict::MayDepend);
        assert_eq!(gcd_test(&s(3, 0), &s(6, 1)), Verdict::Independent);
    }

    #[test]
    fn gcd_invariant_pairs() {
        assert_eq!(gcd_test(&s(0, 5), &s(0, 5)), Verdict::MayDepend);
        assert_eq!(gcd_test(&s(0, 5), &s(0, 6)), Verdict::Independent);
    }

    #[test]
    fn banerjee_uses_the_bounds() {
        // i vs i' + 100 with UB = 50: ranges [1,50] and [101,150] — disjoint.
        assert_eq!(
            banerjee_test(&s(1, 0), &s(1, 100), 50),
            Verdict::Independent
        );
        // With UB = 200 they overlap.
        assert_eq!(banerjee_test(&s(1, 0), &s(1, 100), 200), Verdict::MayDepend);
    }

    #[test]
    fn banerjee_negative_coefficients() {
        // i vs -i' + 5, UB = 10: LHS = i + i' ∈ [2, 20]; diff = 5 → overlap.
        assert_eq!(banerjee_test(&s(1, 0), &s(-1, 5), 10), Verdict::MayDepend);
        // diff = 40 is out of range.
        assert_eq!(
            banerjee_test(&s(1, 0), &s(-1, 40), 10),
            Verdict::Independent
        );
    }

    #[test]
    fn combined_is_the_conjunction() {
        assert_eq!(
            combined_test(&s(2, 0), &s(2, 1), Some(1000)),
            Verdict::Independent
        );
        assert_eq!(
            combined_test(&s(1, 0), &s(1, 100), Some(50)),
            Verdict::Independent
        );
        assert_eq!(
            combined_test(&s(1, 0), &s(1, 2), Some(50)),
            Verdict::MayDepend
        );
        // Symbolic subscripts: always MayDepend.
        let sym = AffineSub {
            coef: arrayflow_ir::LinExpr::symbol(arrayflow_ir::VarId(99)),
            rest: arrayflow_ir::LinExpr::zero(),
        };
        assert_eq!(combined_test(&sym, &s(1, 0), Some(10)), Verdict::MayDepend);
    }
}
