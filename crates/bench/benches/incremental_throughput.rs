//! Incremental analysis throughput: edits/sec through a live session
//! (`Engine::analyze_delta`) against full re-analysis of the edited
//! program, by loop size.
//!
//! The session path pays only for the lattice columns the edit dirties;
//! the full path pays normalize + graph construction + a complete solve
//! on every edit — the cost a session-less server charges per keystroke.
//! The gap must widen with loop size: that is the point of the
//! subsystem. The run also writes machine-readable results to
//! `BENCH_incremental.json` at the workspace root.

use std::hint::black_box;
use std::path::Path;
use std::time::{Duration, Instant};

use arrayflow_analyses::analyze_nest;
use arrayflow_engine::{Engine, EngineConfig};
use arrayflow_ir::apply_edit;
use arrayflow_workloads::{random_edits, random_loop, LoopShape};

struct Tier {
    name: &'static str,
    stmts: usize,
    edits: usize,
    incremental_eps: f64,
    full_eps: f64,
    speedup: f64,
    dirty_fraction: f64,
    fallbacks: u64,
}

/// Median of three timed runs.
fn median3<R>(mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut runs: Vec<(Duration, R)> = (0..3)
        .map(|_| {
            let start = Instant::now();
            let r = f();
            (start.elapsed(), r)
        })
        .collect();
    runs.sort_by_key(|(d, _)| *d);
    runs.swap_remove(1)
}

fn run_tier(name: &'static str, stmts: usize, arrays: usize, edits: usize) -> Tier {
    let shape = LoopShape {
        stmts,
        arrays,
        ..LoopShape::default()
    };
    let base = random_loop(&shape, 42);
    let mut source = base.clone();
    source.renumber();
    let edits = random_edits(&source, &shape, edits, 7);

    // Incremental: a fresh session per run, one delta per edit. The
    // session's program evolves through the same chain the full path
    // replays below.
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    // Opening the session is the one-time full analysis; the per-edit
    // cost under measurement is the delta loop alone.
    let (inc, (dirty, total, fallbacks)) = {
        let mut runs: Vec<(Duration, (u64, u64, u64))> = (0..3)
            .map(|_| {
                let (session, _) = engine.open_session(&base).expect("open session");
                let start = Instant::now();
                let mut dirty = 0u64;
                let mut total = 0u64;
                let mut fallbacks = 0u64;
                for edit in &edits {
                    let d = engine.analyze_delta(session, edit).expect("delta");
                    dirty += d.dirty_columns as u64;
                    total += d.total_columns as u64;
                    fallbacks += d.fallback as u64;
                    black_box(&d.report);
                }
                let elapsed = start.elapsed();
                engine.close_session(session);
                (elapsed, (dirty, total, fallbacks))
            })
            .collect();
        runs.sort_by_key(|(d, _)| *d);
        runs.swap_remove(1)
    };

    // Full: apply each edit, then re-analyze the whole loop from scratch
    // with the uncached sequential driver.
    let (full, _) = median3(|| {
        let mut source = base.clone();
        source.renumber();
        for edit in &edits {
            apply_edit(&mut source, edit).expect("apply edit");
            let mut p = source.clone();
            arrayflow_ir::normalize(&mut p);
            p.renumber();
            black_box(analyze_nest(&p).expect("workload analyzes"));
        }
    });

    let incremental_eps = edits.len() as f64 / inc.as_secs_f64();
    let full_eps = edits.len() as f64 / full.as_secs_f64();
    Tier {
        name,
        stmts,
        edits: edits.len(),
        incremental_eps,
        full_eps,
        speedup: incremental_eps / full_eps,
        dirty_fraction: dirty as f64 / total.max(1) as f64,
        fallbacks,
    }
}

fn main() {
    println!("\n== incremental throughput: edit chains, delta vs full re-analysis ==");
    // The array pool grows with the loop: big loops reference many
    // arrays, while a single-statement edit still touches at most three
    // of them — so the edit's *locality* grows with program size, which
    // is exactly what the incremental path exploits.
    let mut tiers = Vec::new();
    for (name, stmts, arrays, edits) in [
        ("small", 8, 4, 64),
        ("medium", 32, 8, 48),
        ("large", 128, 16, 24),
        ("xlarge", 512, 64, 8),
    ] {
        let t = run_tier(name, stmts, arrays, edits);
        println!(
            "{:<8} {:>4} stmts  {:>10.0} edits/s incremental  {:>9.0} edits/s full  \
             speedup {:>6.2}x  dirty {:>5.1}%  fallbacks {}",
            t.name,
            t.stmts,
            t.incremental_eps,
            t.full_eps,
            t.speedup,
            100.0 * t.dirty_fraction,
            t.fallbacks,
        );
        tiers.push(t);
    }

    // The acceptance bar: single-statement edits on the largest tier must
    // be at least 5x faster than re-analyzing from scratch.
    let largest = tiers.last().unwrap();
    assert!(
        largest.speedup >= 5.0,
        "largest tier speedup {:.2}x < 5x",
        largest.speedup
    );
    // And assignment-for-assignment chains never leave the fast path.
    assert!(
        tiers.iter().all(|t| t.fallbacks == 0),
        "unexpected fallbacks"
    );

    let rows: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                r#"    {{"tier": "{}", "stmts": {}, "edits": {}, "incremental_edits_per_sec": {:.1}, "full_edits_per_sec": {:.1}, "speedup": {:.2}, "dirty_column_fraction": {:.4}, "fallbacks": {}}}"#,
                t.name, t.stmts, t.edits, t.incremental_eps, t.full_eps, t.speedup, t.dirty_fraction, t.fallbacks
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"incremental_throughput\",\n  \"tiers\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_incremental.json");
    std::fs::write(&out, json).expect("write BENCH_incremental.json");
    println!("\nwrote {}", out.display());
}
