//! Service throughput: analyze requests/sec over loopback TCP, by client
//! thread count, against the direct in-process `Engine` baseline.
//!
//! Each request carries a DSL program (the engine-throughput workload,
//! pretty-printed back into source) as one newline-framed JSON line; each
//! client thread runs synchronous request/response over its own
//! connection. The gap to the baseline is the full service overhead:
//! JSON encode/decode, socket round-trip, queueing and re-parsing the
//! DSL on every request. A fresh server (cold cache) serves every run;
//! only the client phase is on the clock (setup and teardown are not).
//! On unix the same workload also runs through the poll(2) event loop —
//! the regression gate for replacing thread-per-connection I/O.

use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use arrayflow_bench::time;
use arrayflow_engine::{Engine, EngineConfig};
use arrayflow_ir::pretty::print_program;
use arrayflow_ir::{parse_program, Program};
use arrayflow_service::{Json, Server, ServiceConfig};
use arrayflow_workloads::{random_loop, LoopShape};

const BATCH: usize = 400;
const DISTINCT: u64 = 100;

fn workload() -> Vec<Program> {
    let shape = LoopShape {
        stmts: 10,
        arrays: 3,
        cond_pct: 25,
        ..LoopShape::default()
    };
    (0..BATCH)
        .map(|k| random_loop(&shape, k as u64 % DISTINCT))
        .collect()
}

/// One newline-framed analyze request per program, JSON-escaped through
/// the service's own encoder so the bench cannot drift from the protocol.
fn requests(programs: &[Program]) -> Vec<String> {
    programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Json::Obj(vec![
                ("id".to_owned(), Json::Num(i as f64)),
                ("verb".to_owned(), Json::Str("analyze".to_owned())),
                ("program".to_owned(), Json::Str(print_program(p))),
            ])
            .to_string()
        })
        .collect()
}

/// Median of three timed runs of `f`.
fn median3(mut f: impl FnMut()) -> Duration {
    let mut runs: Vec<Duration> = (0..3).map(|_| time(&mut f).0).collect();
    runs.sort();
    runs[1]
}

/// Median of three runs of `f`, where `f` times its own measured region
/// (so per-run server setup and teardown stay out of the clock).
fn median3_inner(mut f: impl FnMut() -> Duration) -> Duration {
    let mut runs: Vec<Duration> = (0..3).map(|_| f()).collect();
    runs.sort();
    runs[1]
}

/// The client phase: `clients` threads splitting `lines` round-robin,
/// synchronous request/response over their own connections.
fn run_clients(addr: std::net::SocketAddr, lines: &[String], clients: usize) {
    std::thread::scope(|scope| {
        for c in 0..clients {
            let chunk: Vec<&str> = lines
                .iter()
                .skip(c)
                .step_by(clients)
                .map(String::as_str)
                .collect();
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut line = String::new();
                for req in chunk {
                    writer.write_all(req.as_bytes()).expect("send");
                    writer.write_all(b"\n").expect("send");
                    line.clear();
                    reader.read_line(&mut line).expect("recv");
                    assert!(line.contains("\"ok\":true"), "request failed: {line}");
                }
            });
        }
    });
}

fn main() {
    let programs = workload();
    let lines = requests(&programs);
    let sources: Vec<String> = programs.iter().map(print_program).collect();

    // Baseline: parse + analyze in-process through a fresh engine, no
    // sockets — the same work the service performs per request.
    let base = median3(|| {
        let engine = Engine::new(EngineConfig::default());
        for src in &sources {
            let program = parse_program(src).expect("workload re-parses");
            black_box(engine.analyze_with(
                0,
                &program,
                arrayflow_engine::ProblemSet::ALL,
                EngineConfig::default().dep_max_distance,
            ));
        }
    });
    let base_rps = BATCH as f64 / base.as_secs_f64();

    println!("\n== service throughput: {BATCH} analyze requests, {DISTINCT} distinct loops ==");
    println!(
        "{:<24}  {:>10.1} requests/sec  (1.00x of direct engine)",
        "direct engine", base_rps
    );

    for clients in [1usize, 4, 8] {
        let d = median3_inner(|| {
            let server = Server::bind(
                "127.0.0.1:0",
                ServiceConfig {
                    queue_capacity: 1024,
                    request_timeout: Duration::from_secs(30),
                    ..ServiceConfig::default()
                },
            )
            .expect("bind loopback");
            let addr = server.local_addr().expect("local addr");
            let service = server.service();
            let server_thread = std::thread::spawn(move || server.run());

            let (d, ()) = time(|| run_clients(addr, &lines, clients));

            service.shutdown();
            server_thread.join().expect("server thread").expect("run");
            d
        });
        let rps = BATCH as f64 / d.as_secs_f64();
        println!(
            "{:<24}  {:>10.1} requests/sec  ({:.2}x of direct engine)",
            format!("service, {clients} client(s)"),
            rps,
            rps / base_rps,
        );
    }

    // The same cold-cache JSON workload through the poll(2) event loop:
    // the regression gate for replacing thread-per-connection (E14 asks
    // this to stay within 5% of the threaded rows above).
    #[cfg(unix)]
    for clients in [1usize, 4, 8] {
        use arrayflow_service::{EventServer, ProtoMode, Service};
        let d = median3_inner(|| {
            let service = Service::start(ServiceConfig {
                queue_capacity: 1024,
                request_timeout: Duration::from_secs(30),
                ..ServiceConfig::default()
            })
            .expect("service starts");
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = listener.local_addr().expect("local addr");
            let server = EventServer::attach(listener, service.clone());
            let server_thread = std::thread::spawn(move || server.run(ProtoMode::Auto));

            let (d, ()) = time(|| run_clients(addr, &lines, clients));

            service.shutdown();
            server_thread.join().expect("server thread").expect("run");
            d
        });
        let rps = BATCH as f64 / d.as_secs_f64();
        println!(
            "{:<24}  {:>10.1} requests/sec  ({:.2}x of direct engine)",
            format!("event loop, {clients} client(s)"),
            rps,
            rps / base_rps,
        );
    }

    println!(
        "\n(hardware threads available: {})",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
}
