//! E7's wall-clock companion: the framework's three-pass analysis versus
//! explicit instance propagation (Rau-style), whose iteration count grows
//! with the reuse distance; and versus the dependence-test baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arrayflow_analyses::analyze_loop;
use arrayflow_baselines::{dependence_based_reuses, simulate_available};
use arrayflow_workloads::{pair_sum, random_loop, LoopShape};

fn bench_framework_vs_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("framework_vs_instance_sim");
    group.sample_size(10);
    for d in [2i64, 8, 32] {
        let p = pair_sum(200, d);
        let a = analyze_loop(&p).unwrap();
        group.bench_with_input(BenchmarkId::new("framework", d), &p, |b, p| {
            b.iter(|| arrayflow_analyses::analyze_loop(std::hint::black_box(p)).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("instance_sim", d),
            &(a.graph.clone(), a.sites.clone()),
            |b, (graph, sites)| {
                b.iter(|| {
                    simulate_available(
                        std::hint::black_box(graph),
                        std::hint::black_box(sites),
                        64,
                        500,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_reuse_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("reuse_detection");
    group.sample_size(10);
    let p = random_loop(
        &LoopShape {
            stmts: 40,
            arrays: 4,
            cond_pct: 40,
            ..LoopShape::default()
        },
        11,
    );
    let a = analyze_loop(&p).unwrap();
    group.bench_function("framework_reuse_pairs", |b| {
        b.iter(|| std::hint::black_box(&a).reuse_pairs())
    });
    group.bench_function("dependence_based", |b| {
        b.iter(|| dependence_based_reuses(std::hint::black_box(&a)))
    });
    group.finish();
}

criterion_group!(benches, bench_framework_vs_simulation, bench_reuse_detection);
criterion_main!(benches);
