//! E7's wall-clock companion: the framework's three-pass analysis versus
//! explicit instance propagation (Rau-style), whose iteration count grows
//! with the reuse distance; and versus the dependence-test baseline.

use std::hint::black_box;

use arrayflow_analyses::analyze_loop;
use arrayflow_baselines::{dependence_based_reuses, simulate_available};
use arrayflow_bench::{bench, report};
use arrayflow_workloads::{pair_sum, random_loop, LoopShape};

fn bench_framework_vs_simulation() {
    let mut rows = Vec::new();
    for d in [2i64, 8, 32] {
        let p = pair_sum(200, d);
        let a = analyze_loop(&p).unwrap();
        rows.push(bench(&format!("framework/{d}"), || {
            black_box(analyze_loop(black_box(&p)).unwrap());
        }));
        let (graph, sites) = (a.graph.clone(), a.sites.clone());
        rows.push(bench(&format!("instance_sim/{d}"), || {
            black_box(simulate_available(
                black_box(&graph),
                black_box(&sites),
                64,
                500,
            ));
        }));
    }
    report("framework_vs_instance_sim", &rows);
}

fn bench_reuse_detection() {
    let mut rows = Vec::new();
    let p = random_loop(
        &LoopShape {
            stmts: 40,
            arrays: 4,
            cond_pct: 40,
            ..LoopShape::default()
        },
        11,
    );
    let a = analyze_loop(&p).unwrap();
    rows.push(bench("framework_reuse_pairs", || {
        black_box(black_box(&a).reuse_pairs());
    }));
    rows.push(bench("dependence_based", || {
        black_box(dependence_based_reuses(black_box(&a)));
    }));
    report("reuse_detection", &rows);
}

fn main() {
    bench_framework_vs_simulation();
    bench_reuse_detection();
}
