//! Solver scaling: analysis time as the loop body grows, for all four
//! framework instances, plus the bounded (exactly-three-pass) schedule.
//! The paper's claim is linear work — 3·N node visits for must-problems —
//! and these benches show the wall-clock consequence.

use std::hint::black_box;

use arrayflow_analyses::{build_spec, enumerate_sites, GK};
use arrayflow_bench::{bench, report};
use arrayflow_core::{solve, solve_bounded, Direction, Mode};
use arrayflow_graph::build_loop_graph;
use arrayflow_workloads::{random_loop, LoopShape};

fn bench_solver() {
    let mut rows = Vec::new();
    for stmts in [8usize, 32, 128, 512] {
        let p = random_loop(
            &LoopShape {
                stmts,
                arrays: 4,
                cond_pct: 25,
                ..LoopShape::default()
            },
            42,
        );
        let l = p.sole_loop().unwrap().clone();
        let graph = build_loop_graph(&l);
        let (sites, _) = enumerate_sites(&l, &graph, &p.symbols);

        #[rustfmt::skip]
        let cases = [
            ("must_reaching", GK::REACHING_DEFS, Direction::Forward, Mode::Must),
            ("available", GK::AVAILABLE, Direction::Forward, Mode::Must),
            ("busy_bwd", GK::BUSY_STORES, Direction::Backward, Mode::Must),
            ("reaching_may", GK::REACHING_REFS, Direction::Forward, Mode::May),
        ];
        for (name, gk, dir, mode) in cases {
            let built = build_spec(&sites, gk, dir, mode);
            rows.push(bench(&format!("{name}/{stmts}"), || {
                black_box(solve(&graph, black_box(&built.spec)));
            }));
        }
        // The paper-exact schedule (no convergence check) vs run-to-fixpoint.
        let built = build_spec(&sites, GK::AVAILABLE, Direction::Forward, Mode::Must);
        rows.push(bench(&format!("available_bounded/{stmts}"), || {
            black_box(solve_bounded(&graph, black_box(&built.spec)));
        }));
    }
    report("solver", &rows);
}

fn bench_end_to_end() {
    let mut rows = Vec::new();
    for stmts in [8usize, 32, 128] {
        let p = random_loop(
            &LoopShape {
                stmts,
                arrays: 4,
                cond_pct: 25,
                ..LoopShape::default()
            },
            7,
        );
        rows.push(bench(&format!("analyze_loop/{stmts}"), || {
            black_box(arrayflow_analyses::analyze_loop(black_box(&p)).unwrap());
        }));
    }
    report("analyze_loop_end_to_end", &rows);
}

fn main() {
    bench_solver();
    bench_end_to_end();
}
