//! Solver scaling: analysis time as the loop body grows, for all four
//! framework instances, plus the bounded (exactly-three-pass) schedule.
//! The paper's claim is linear work — 3·N node visits for must-problems —
//! and these benches show the wall-clock consequence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arrayflow_analyses::{build_spec, enumerate_sites, GK};
use arrayflow_core::{solve, solve_bounded, Direction, Mode};
use arrayflow_graph::build_loop_graph;
use arrayflow_workloads::{random_loop, LoopShape};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);
    for stmts in [8usize, 32, 128, 512] {
        let p = random_loop(
            &LoopShape {
                stmts,
                arrays: 4,
                cond_pct: 25,
                ..LoopShape::default()
            },
            42,
        );
        let l = p.sole_loop().unwrap().clone();
        let graph = build_loop_graph(&l);
        let (sites, _) = enumerate_sites(&l, &graph, &p.symbols);

        for (name, gk, dir, mode) in [
            ("must_reaching", GK::REACHING_DEFS, Direction::Forward, Mode::Must),
            ("available", GK::AVAILABLE, Direction::Forward, Mode::Must),
            ("busy_bwd", GK::BUSY_STORES, Direction::Backward, Mode::Must),
            ("reaching_may", GK::REACHING_REFS, Direction::Forward, Mode::May),
        ] {
            let built = build_spec(&sites, gk, dir, mode);
            group.bench_with_input(
                BenchmarkId::new(name, stmts),
                &built.spec,
                |b, spec| b.iter(|| solve(&graph, std::hint::black_box(spec))),
            );
        }
        // The paper-exact schedule (no convergence check) vs run-to-fixpoint.
        let built = build_spec(&sites, GK::AVAILABLE, Direction::Forward, Mode::Must);
        group.bench_with_input(
            BenchmarkId::new("available_bounded", stmts),
            &built.spec,
            |b, spec| b.iter(|| solve_bounded(&graph, std::hint::black_box(spec))),
        );
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze_loop_end_to_end");
    group.sample_size(10);
    for stmts in [8usize, 32, 128] {
        let p = random_loop(
            &LoopShape {
                stmts,
                arrays: 4,
                cond_pct: 25,
                ..LoopShape::default()
            },
            7,
        );
        group.bench_with_input(BenchmarkId::from_parameter(stmts), &p, |b, p| {
            b.iter(|| arrayflow_analyses::analyze_loop(std::hint::black_box(p)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver, bench_end_to_end);
criterion_main!(benches);
