//! Engine throughput: programs/sec over a 500-program batch, by worker
//! count, against the uncached sequential driver.
//!
//! The stream duplicates loop structures (each of 100 seeds appears five
//! times under renaming-free regeneration), which is what a compiler or
//! autotuner actually emits — the memo cache answers the repeats, and the
//! worker pool spreads the misses. The table reports throughput, speedup
//! over analyzing every program from scratch sequentially, and the cache
//! hit rate.

use std::hint::black_box;
use std::time::Duration;

use arrayflow_analyses::analyze_nest;
use arrayflow_bench::time;
use arrayflow_engine::{Engine, EngineConfig, EngineStats, EvictionPolicy};
use arrayflow_ir::Program;
use arrayflow_workloads::{random_loop, LoopShape};

const BATCH: usize = 500;
const DISTINCT: u64 = 100;

fn workload() -> Vec<Program> {
    let shape = LoopShape {
        stmts: 10,
        arrays: 3,
        cond_pct: 25,
        ..LoopShape::default()
    };
    (0..BATCH)
        .map(|k| random_loop(&shape, k as u64 % DISTINCT))
        .collect()
}

/// Median of three timed runs of `f`.
fn median3(mut f: impl FnMut() -> EngineStats) -> (Duration, EngineStats) {
    let mut runs: Vec<(Duration, EngineStats)> = (0..3).map(|_| time(&mut f)).collect();
    runs.sort_by_key(|(d, _)| *d);
    runs.swap_remove(1)
}

fn main() {
    let programs = workload();

    // Baseline: the plain sequential driver, no cache, no threads — every
    // program pays a full normalize + solve.
    let (base, _) = median3(|| {
        for p in &programs {
            let mut p = p.clone();
            arrayflow_ir::normalize(&mut p);
            p.renumber();
            black_box(analyze_nest(&p).expect("workload analyzes"));
        }
        EngineStats::default()
    });
    let base_pps = BATCH as f64 / base.as_secs_f64();

    println!("\n== engine throughput: {BATCH}-program batch, {DISTINCT} distinct structures ==");
    println!(
        "{:<24}  {:>10.1} programs/sec  (speedup 1.00x, hit rate –)",
        "sequential driver", base_pps
    );

    for workers in [1usize, 2, 4, 8] {
        // A fresh engine per run: the cache starts cold, so the measured
        // hit rate is the one the duplicated stream itself produces.
        let (d, stats) = median3(|| {
            let engine = Engine::new(EngineConfig {
                workers,
                ..EngineConfig::default()
            });
            black_box(engine.analyze_batch(&programs));
            engine.stats()
        });
        let pps = BATCH as f64 / d.as_secs_f64();
        println!(
            "{:<24}  {:>10.1} programs/sec  (speedup {:.2}x, hit rate {:.0}%)",
            format!("engine, {workers} worker(s)"),
            pps,
            pps / base_pps,
            100.0 * stats.hit_rate()
        );
        assert!(
            stats.hit_rate() > 0.5,
            "duplicated stream must hit > 50%, got {:.2}",
            stats.hit_rate()
        );
        assert!(
            pps > base_pps,
            "memoizing engine must beat the uncached driver ({pps:.1} vs {base_pps:.1} programs/sec)"
        );
    }

    eviction_comparison();

    println!(
        "\n(hardware threads available: {})",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
}

/// A skewed 500-program stream: each 10-program cycle touches all 8 hot
/// structures then 2 one-shot cold ones. The hot set plus the transient
/// colds just exceeds the cache capacity, so every cycle forces
/// evictions; the hot entries are re-referenced every cycle, the colds
/// never are.
fn skewed_workload() -> Vec<Program> {
    let shape = LoopShape {
        stmts: 10,
        arrays: 3,
        cond_pct: 25,
        ..LoopShape::default()
    };
    (0..BATCH)
        .map(|k| {
            let seed = if k % 10 < 8 {
                (k % 10) as u64 // hot: eight structures, touched every cycle
            } else {
                10_000 + k as u64 // cold: unique, never seen again
            };
            random_loop(&shape, seed)
        })
        .collect()
}

/// FIFO vs second-chance on the skewed stream with capacity 12. FIFO
/// cannot tell the re-referenced hot entries from the dead cold ones, so
/// the cold trickle steadily rotates hot entries out of the front of the
/// queue; second-chance sees their referenced bit, requeues them, and
/// evicts the colds instead — which shows up directly as hit rate.
fn eviction_comparison() {
    let programs = skewed_workload();
    println!(
        "\n== eviction policy: skewed {BATCH}-program stream (8 hot + cold trickle), capacity 12 =="
    );
    let mut rates = Vec::new();
    for (name, eviction) in [
        ("fifo", EvictionPolicy::Fifo),
        ("second-chance", EvictionPolicy::SecondChance),
    ] {
        let engine = Engine::new(EngineConfig {
            workers: 1, // deterministic arrival order
            cache_shards: 1,
            cache_capacity: 12,
            eviction,
            ..EngineConfig::default()
        });
        black_box(engine.analyze_batch(&programs));
        let stats = engine.stats();
        println!(
            "{:<24}  hit rate {:>5.1}%  ({} hits / {} misses, {} evictions)",
            name,
            100.0 * stats.hit_rate(),
            stats.cache.hits,
            stats.cache.misses,
            stats.cache.evictions
        );
        rates.push(stats.hit_rate());
    }
    println!(
        "second-chance delta: {:+.1} percentage points",
        100.0 * (rates[1] - rates[0])
    );
    assert!(
        rates[1] >= rates[0],
        "second-chance must not lose to FIFO on a skewed stream ({:.3} vs {:.3})",
        rates[1],
        rates[0]
    );
}
