//! Wire throughput (E14): the binary protocol's fingerprint fast path
//! against the direct in-process engine, plus the JSON path over the
//! same event-driven server for comparison with E11.
//!
//! Every side runs on a warm cache — the question is pure transport and
//! dispatch overhead. "Direct engine" is what an embedder pays per
//! request given source: parse, fingerprint, memo-cache hit. The binary
//! fingerprint path ships 16 bytes instead of the program and skips the
//! server-side parse entirely, so it can approach (target: ≥ 0.9x) the
//! in-process rate despite the socket round-trip.

#[cfg(not(unix))]
fn main() {
    eprintln!("wire_throughput requires unix (poll-based event server)");
}

#[cfg(unix)]
fn main() {
    imp::main()
}

#[cfg(unix)]
mod imp {
    use std::hint::black_box;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::time::Duration;

    use arrayflow_bench::time;
    use arrayflow_engine::{Engine, EngineConfig, ProblemSet};
    use arrayflow_ir::pretty::print_program;
    use arrayflow_ir::{parse_program, Program};
    use arrayflow_service::{
        Client, ClientConfig, EventServer, Json, ProtoMode, Service, ServiceConfig,
    };
    use arrayflow_wire::proto::{AnalyzeRequest, Request as WireRequest};
    use arrayflow_wire::{encode_frame, FrameDecoder, FrameEvent};
    use arrayflow_workloads::{random_loop, LoopShape};

    const BATCH: usize = 400;
    const DISTINCT: u64 = 100;

    fn workload() -> Vec<Program> {
        let shape = LoopShape {
            stmts: 10,
            arrays: 3,
            cond_pct: 25,
            ..LoopShape::default()
        };
        (0..BATCH)
            .map(|k| random_loop(&shape, k as u64 % DISTINCT))
            .collect()
    }

    /// Median of three timed runs of `f`.
    fn median3(mut f: impl FnMut()) -> Duration {
        let mut runs: Vec<Duration> = (0..3).map(|_| time(&mut f).0).collect();
        runs.sort();
        runs[1]
    }

    fn start_server() -> (SocketAddr, std::sync::Arc<Service>) {
        let service = Service::start(ServiceConfig {
            queue_capacity: 1024,
            request_timeout: Duration::from_secs(30),
            ..ServiceConfig::default()
        })
        .expect("service starts");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let server = EventServer::attach(listener, service.clone());
        std::thread::spawn(move || server.run(ProtoMode::Auto));
        (addr, service)
    }

    pub fn main() {
        let programs = workload();
        let sources: Vec<String> = programs.iter().map(print_program).collect();
        let bound = EngineConfig::default().dep_max_distance;

        // Direct-engine baseline, warm cache: parse + memo hit per call.
        let engine = Engine::new(EngineConfig::default());
        for src in &sources {
            let p = parse_program(src).expect("workload re-parses");
            engine.analyze_with(0, &p, ProblemSet::ALL, bound);
        }
        let base = median3(|| {
            for src in &sources {
                let p = parse_program(src).expect("workload re-parses");
                black_box(engine.analyze_with(0, &p, ProblemSet::ALL, bound));
            }
        });
        let base_rps = BATCH as f64 / base.as_secs_f64();

        println!(
            "\n== wire throughput: {BATCH} warm analyze requests, {DISTINCT} distinct loops =="
        );
        println!(
            "{:<30}  {:>10.1} requests/sec  (1.00x of direct engine)",
            "direct engine (warm)", base_rps
        );

        // One server for all wire runs; the warming pass fills its cache.
        let (addr, service) = start_server();
        let mut warm = Client::new(addr.to_string(), ClientConfig::default());
        let fps: Vec<[u8; 16]> = sources
            .iter()
            .map(|src| {
                let ok = warm.analyze_binary(src).expect("warm analyze");
                ok.loops[0].fingerprint
            })
            .collect();

        // Binary protocol, fingerprint-only requests, pipelined: the
        // whole batch goes out in one burst on one connection and the
        // responses stream back — the protocol's high-throughput mode,
        // with the per-request socket round trip amortized away.
        let burst: Vec<u8> = fps
            .iter()
            .enumerate()
            .flat_map(|(i, fp)| {
                let req = WireRequest::Analyze(AnalyzeRequest {
                    id: i as u64,
                    fingerprint: Some(*fp),
                    problems: None,
                    distance_bound: None,
                    source: None,
                });
                encode_frame(req.tag(), &req.encode_payload())
            })
            .collect();
        let d = median3(|| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            stream.write_all(&burst).expect("send burst");
            let mut decoder = FrameDecoder::new(usize::MAX);
            let mut frames = 0usize;
            let mut buf = [0u8; 1 << 16];
            while frames < BATCH {
                let read = std::io::Read::read(&mut stream, &mut buf).expect("recv");
                assert!(read > 0, "server closed early");
                decoder.extend(&buf[..read]);
                while let Some(ev) = decoder.next().expect("well-framed response") {
                    assert!(matches!(ev, FrameEvent::Frame { .. }));
                    frames += 1;
                }
            }
        });
        let rps = BATCH as f64 / d.as_secs_f64();
        println!(
            "{:<30}  {:>10.1} requests/sec  ({:.2}x of direct engine)",
            "binary fingerprint, pipelined",
            rps,
            rps / base_rps,
        );

        // Binary protocol, fingerprint-only requests.
        for clients in [1usize, 4] {
            let d = median3(|| {
                std::thread::scope(|scope| {
                    for c in 0..clients {
                        let chunk: Vec<[u8; 16]> =
                            fps.iter().skip(c).step_by(clients).copied().collect();
                        scope.spawn(move || {
                            let mut client =
                                Client::connect(addr.to_string(), ClientConfig::default())
                                    .expect("connect");
                            for fp in chunk {
                                let ok = client.analyze_fingerprint(fp, None).expect("fast path");
                                black_box(&ok.loops);
                                assert_eq!(ok.cache_hits, 1, "fast path must hit");
                            }
                        });
                    }
                });
            });
            let rps = BATCH as f64 / d.as_secs_f64();
            println!(
                "{:<30}  {:>10.1} requests/sec  ({:.2}x of direct engine)",
                format!("binary fingerprint, {clients} client(s)"),
                rps,
                rps / base_rps,
            );
        }

        // JSON path over the same event server (the E11 workload shape):
        // full source shipped, server re-parses, warm cache behind it.
        let lines: Vec<String> = programs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Json::Obj(vec![
                    ("id".to_owned(), Json::Num(i as f64)),
                    ("verb".to_owned(), Json::Str("analyze".to_owned())),
                    ("program".to_owned(), Json::Str(print_program(p))),
                ])
                .to_string()
            })
            .collect();
        for clients in [1usize, 4] {
            let d = median3(|| {
                std::thread::scope(|scope| {
                    for c in 0..clients {
                        let chunk: Vec<&str> = lines
                            .iter()
                            .skip(c)
                            .step_by(clients)
                            .map(String::as_str)
                            .collect();
                        scope.spawn(move || {
                            let stream = TcpStream::connect(addr).expect("connect");
                            stream.set_nodelay(true).expect("nodelay");
                            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                            let mut writer = stream;
                            let mut line = String::new();
                            for req in chunk {
                                writer.write_all(req.as_bytes()).expect("send");
                                writer.write_all(b"\n").expect("send");
                                line.clear();
                                reader.read_line(&mut line).expect("recv");
                                assert!(line.contains("\"ok\":true"), "request failed: {line}");
                            }
                        });
                    }
                });
            });
            let rps = BATCH as f64 / d.as_secs_f64();
            println!(
                "{:<30}  {:>10.1} requests/sec  ({:.2}x of direct engine)",
                format!("json over event loop, {clients} client(s)"),
                rps,
                rps / base_rps,
            );
        }

        service.shutdown();
        println!(
            "\n(hardware threads available: {})",
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
    }
}
