//! Cluster throughput: analyze requests/sec through `serve --router`
//! as the node count scales 1 → 2 → 4, plus per-shard cache-hit rates
//! against the single-node baseline.
//!
//! Each "node" is an in-process `Service` + poll(2) `EventServer` with a
//! deliberately small memo-cache capacity — the per-machine memory
//! budget a real deployment shards to escape. The working set is twice
//! one node's capacity, and requests draw from it in a deterministic
//! pseudo-random order, so the single node thrashes (evict → recompute)
//! while the ring's fingerprint sharding multiplies the aggregate cache
//! until the whole working set stays resident. That aggregate-capacity
//! effect is the hardware-independent half of cluster scaling; the
//! CPU-parallelism half needs one hardware thread per node and is
//! reported for whatever the host provides (see the trailing line).
//!
//! The router adds one loopback hop per request; the `direct node` row
//! quantifies that hop against the same single node addressed without
//! the router.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use arrayflow_bench::time;
use arrayflow_cluster::Topology;
use arrayflow_ir::pretty::print_program;
use arrayflow_service::{
    EventServer, Json, ProtoMode, RouterConfig, RouterServer, Service, ServiceConfig,
};
use arrayflow_workloads::{random_loop, LoopShape};

/// Distinct loops in the working set — twice one node's cache capacity.
const DISTINCT: usize = 192;
/// Per-node memo-cache capacity (the sharded resource).
const NODE_CACHE: usize = 96;
/// Analyze requests per timed run, drawn pseudo-randomly from the set.
const REQUESTS: usize = 800;

fn workload() -> Vec<String> {
    let shape = LoopShape {
        stmts: 40,
        arrays: 5,
        cond_pct: 25,
        ..LoopShape::default()
    };
    (0..DISTINCT)
        .map(|k| print_program(&random_loop(&shape, k as u64)))
        .collect()
}

/// Request lines: `REQUESTS` draws from the working set in a fixed
/// pseudo-random order (splitmix64), JSON-framed through the service's
/// own encoder.
fn request_lines(sources: &[String]) -> Vec<String> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    (0..REQUESTS)
        .map(|i| {
            let src = &sources[(next() % sources.len() as u64) as usize];
            Json::Obj(vec![
                ("id".to_owned(), Json::Num(i as f64)),
                ("verb".to_owned(), Json::Str("analyze".to_owned())),
                ("program".to_owned(), Json::Str(src.clone())),
            ])
            .to_string()
        })
        .collect()
}

struct Node {
    service: std::sync::Arc<Service>,
    addr: String,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start_node(id: usize) -> Node {
    let service = Service::start(ServiceConfig {
        engine: arrayflow_engine::EngineConfig {
            cache_capacity: NODE_CACHE,
            ..arrayflow_engine::EngineConfig::default()
        },
        workers: 2,
        queue_capacity: 1024,
        request_timeout: Duration::from_secs(30),
        node_id: Some(format!("n{}", id + 1)),
        ..ServiceConfig::default()
    })
    .expect("node service starts");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind node");
    let addr = listener.local_addr().expect("node addr").to_string();
    let server = EventServer::attach(listener, service.clone());
    let thread = std::thread::spawn(move || server.run(ProtoMode::Auto));
    Node {
        service,
        addr,
        thread,
    }
}

/// Runs the request stream synchronously over one connection, returning
/// the run duration and the number of responses that were cache hits.
fn run_stream(addr: &str, lines: &[String]) -> (Duration, usize) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut hits = 0usize;
    let (d, ()) = time(|| {
        let mut line = String::new();
        for req in lines {
            writer.write_all(req.as_bytes()).expect("send");
            writer.write_all(b"\n").expect("send");
            line.clear();
            reader.read_line(&mut line).expect("recv");
            assert!(line.contains("\"ok\":true"), "request failed: {line}");
            let resp = Json::parse(line.trim_end().as_bytes()).expect("json");
            let h = resp
                .get("result")
                .and_then(|r| r.get("stats"))
                .and_then(|s| s.get("cache_hits"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            if h > 0 {
                hits += 1;
            }
        }
    });
    (d, hits)
}

/// Median duration of three timed runs (hits are steady-state stable —
/// the median run's count is returned).
fn median3(mut f: impl FnMut() -> (Duration, usize)) -> (Duration, usize) {
    let mut runs: Vec<(Duration, usize)> = (0..3).map(|_| f()).collect();
    runs.sort();
    runs[1]
}

/// One untimed pass over every distinct source: pays the cold misses so
/// the timed region measures steady state.
fn warm_lines(sources: &[String]) -> Vec<String> {
    sources
        .iter()
        .enumerate()
        .map(|(i, src)| {
            Json::Obj(vec![
                ("id".to_owned(), Json::Num((1_000_000 + i) as f64)),
                ("verb".to_owned(), Json::Str("analyze".to_owned())),
                ("program".to_owned(), Json::Str(src.clone())),
            ])
            .to_string()
        })
        .collect()
}

/// A node's cumulative memo-cache counters, from its metrics verb.
fn node_cache_counters(addr: &str) -> (u64, u64) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(b"{\"id\": 0, \"verb\": \"metrics\"}\n")
        .expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("recv");
    let resp = Json::parse(line.trim_end().as_bytes()).expect("json");
    let metrics = resp
        .get("result")
        .and_then(|r| r.get("metrics"))
        .and_then(Json::as_arr)
        .expect("metrics array");
    let value = |name: &str| -> u64 {
        metrics
            .iter()
            .find(|m| m.get("name").and_then(Json::as_str) == Some(name))
            .and_then(|m| m.get("value"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    (
        value("arrayflow_cache_hits_total"),
        value("arrayflow_cache_misses_total"),
    )
}

struct ClusterRun {
    rps: f64,
    hit_rate: f64,
    per_shard: Vec<f64>,
}

/// Boots `n` fresh nodes behind a fresh router, pays the cold misses
/// with an untimed warm pass, runs the timed stream through the router,
/// scrapes per-shard steady-state hit rates, tears everything down.
fn run_cluster(n: usize, warm: &[String], lines: &[String]) -> ClusterRun {
    let nodes: Vec<Node> = (0..n).map(start_node).collect();
    let spec = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| format!("n{}={}", i + 1, node.addr))
        .collect::<Vec<_>>()
        .join(",");
    let topology = Topology::parse(&spec, 0).expect("topology");
    let mut config = RouterConfig::new(topology);
    config.probe_interval = Duration::from_secs(3600);
    let server = RouterServer::bind("127.0.0.1:0", config).expect("bind router");
    let router_addr = server.local_addr().expect("router addr").to_string();
    let router = server.router();
    let router_thread = std::thread::spawn(move || server.run());

    let _ = run_stream(&router_addr, warm);
    let before: Vec<(u64, u64)> = nodes
        .iter()
        .map(|node| node_cache_counters(&node.addr))
        .collect();

    let (d, hits) = median3(|| run_stream(&router_addr, lines));

    let per_shard: Vec<f64> = nodes
        .iter()
        .zip(&before)
        .map(|(node, &(h0, m0))| {
            let (h1, m1) = node_cache_counters(&node.addr);
            let (dh, dm) = ((h1 - h0) as f64, (m1 - m0) as f64);
            if dh + dm == 0.0 {
                0.0
            } else {
                dh / (dh + dm)
            }
        })
        .collect();
    router.shutdown();
    router_thread.join().expect("router thread").expect("run");
    for node in nodes {
        node.service.shutdown();
        node.thread.join().expect("node thread").expect("run");
    }
    ClusterRun {
        rps: REQUESTS as f64 / d.as_secs_f64(),
        hit_rate: hits as f64 / REQUESTS as f64,
        per_shard,
    }
}

fn main() {
    let sources = workload();
    let warm = warm_lines(&sources);
    let lines = request_lines(&sources);

    println!(
        "\n== cluster throughput: {REQUESTS} analyze requests, {DISTINCT} distinct loops, \
         {NODE_CACHE} cached reports per node, warmed =="
    );

    // Baseline: the same single node without the router in front.
    let direct = {
        let node = start_node(0);
        let _ = run_stream(&node.addr, &warm);
        let (d, hits) = median3(|| run_stream(&node.addr, &lines));
        node.service.shutdown();
        node.thread.join().expect("node thread").expect("run");
        (
            REQUESTS as f64 / d.as_secs_f64(),
            hits as f64 / REQUESTS as f64,
        )
    };
    println!(
        "{:<18}  {:>8.1} requests/sec   hit rate {:>5.1}%",
        "direct node",
        direct.0,
        100.0 * direct.1
    );

    let mut single_rps = 0.0;
    for n in [1usize, 2, 4] {
        let run = run_cluster(n, &warm, &lines);
        if n == 1 {
            single_rps = run.rps;
        }
        let shards = run
            .per_shard
            .iter()
            .map(|r| format!("{:.0}%", 100.0 * r))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<18}  {:>8.1} requests/sec   hit rate {:>5.1}%   ({:.2}x of 1 node; per-shard {})",
            format!("router, {n} node(s)"),
            run.rps,
            100.0 * run.hit_rate,
            run.rps / single_rps,
            shards,
        );
    }

    println!(
        "\n(hardware threads available: {})",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
}
