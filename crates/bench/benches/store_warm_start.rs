//! Warm-start economics of the persistent report store: what does a
//! restart cost with and without `--store`?
//!
//! A populated store is recovered from disk, preloaded into a fresh
//! engine's cache, and the original program stream is replayed; the
//! comparison is a fresh engine that has to re-solve everything. The
//! table reports the one-time warm-start cost (segment scan + preload)
//! and the replay throughput, cold vs warm.

use std::hint::black_box;
use std::sync::Arc;

use arrayflow_bench::time;
use arrayflow_engine::{Engine, EngineConfig};
use arrayflow_ir::Program;
use arrayflow_store::{PersistentTier, Store, StoreConfig};
use arrayflow_workloads::{random_loop, LoopShape};

const DISTINCT: usize = 200;

fn workload() -> Vec<Program> {
    let shape = LoopShape {
        stmts: 10,
        arrays: 3,
        cond_pct: 25,
        ..LoopShape::default()
    };
    (0..DISTINCT)
        .map(|k| random_loop(&shape, k as u64))
        .collect()
}

fn main() {
    let programs = workload();
    let dir = std::env::temp_dir().join(format!("af-warmbench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Populate: a store-backed engine analyzes every program once; the
    // async writer persists each miss. Flush before measuring anything.
    let (populate, appended) = {
        let store = Arc::new(Store::open(StoreConfig::at(&dir)).expect("open store"));
        let tier = PersistentTier::new(Arc::clone(&store), 1024);
        let mut engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        engine.set_second_tier(tier.clone());
        let (d, ()) = time(|| {
            black_box(engine.analyze_batch(&programs));
        });
        tier.flush();
        let stats = store.stats();
        assert_eq!(stats.appends, DISTINCT as u64, "every miss persisted");
        (d, stats.bytes)
    };

    // Cold restart: a fresh engine re-solves the whole stream.
    let (cold, cold_stats) = time(|| {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        black_box(engine.analyze_batch(&programs));
        engine.stats()
    });
    assert_eq!(cold_stats.cache.misses, DISTINCT as u64);

    // Warm restart: recover the store, preload the cache, replay.
    let (recover, store) = time(|| Store::open(StoreConfig::at(&dir)).expect("reopen store"));
    assert_eq!(store.recovery().live_records, DISTINCT as u64);
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let (preload, loaded) =
        time(|| store.for_each_live(|key, report| engine.preload(key, Arc::new(report))));
    assert_eq!(loaded, DISTINCT as u64);
    let (warm, warm_stats) = time(|| {
        black_box(engine.analyze_batch(&programs));
        engine.stats()
    });
    assert_eq!(
        warm_stats.cache.hits, DISTINCT as u64,
        "a warm-started cache answers every replayed program"
    );

    let pps = |d: std::time::Duration| DISTINCT as f64 / d.as_secs_f64();
    println!("\n== store warm start: {DISTINCT} distinct programs, {appended} bytes on disk ==");
    println!(
        "{:<28}  {:>9.1} ms  ({:>8.1} programs/sec)",
        "populate (solve + persist)",
        populate.as_secs_f64() * 1e3,
        pps(populate)
    );
    println!(
        "{:<28}  {:>9.1} ms  ({:>8.1} programs/sec)",
        "cold replay (re-solve)",
        cold.as_secs_f64() * 1e3,
        pps(cold)
    );
    println!(
        "{:<28}  {:>9.1} ms",
        "recovery (segment scan)",
        recover.as_secs_f64() * 1e3
    );
    println!(
        "{:<28}  {:>9.1} ms",
        "preload (disk -> cache)",
        preload.as_secs_f64() * 1e3
    );
    println!(
        "{:<28}  {:>9.1} ms  ({:>8.1} programs/sec)",
        "warm replay (cache hits)",
        warm.as_secs_f64() * 1e3,
        pps(warm)
    );
    let startup = recover + preload;
    println!(
        "\nwarm replay speedup over cold: {:.2}x; warm start pays for itself after {:.0} replayed program(s)",
        cold.as_secs_f64() / warm.as_secs_f64(),
        (startup.as_secs_f64() / (cold.as_secs_f64() / DISTINCT as f64)).ceil()
    );
    assert!(
        warm < cold,
        "replaying from a warm cache must beat re-solving ({warm:?} vs {cold:?})"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
