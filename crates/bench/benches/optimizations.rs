//! Optimization pipelines end to end: planning time for register
//! pipelining, the source transformations, the unrolling controller, and
//! the simulated execution of conventional versus pipelined code (the
//! machine-level effect behind the E4 table).

use std::hint::black_box;

use arrayflow_analyses::analyze_loop;
use arrayflow_bench::{bench, report};
use arrayflow_machine::{compile, compile_with, Machine};
use arrayflow_opt::{
    allocate, controlled_unroll, eliminate_redundant_loads, eliminate_redundant_stores,
    PipelineConfig, UnrollConfig,
};
use arrayflow_workloads::{clipped_wavefront, fig5, fig6, fig7, smooth3};

fn bench_planning() {
    let mut rows = Vec::new();
    for (name, p) in [
        ("fig5", fig5(1000)),
        ("smooth3", smooth3(1000)),
        ("clipped_wavefront", clipped_wavefront(1000)),
    ] {
        let analysis = analyze_loop(&p).unwrap();
        rows.push(bench(&format!("pipeline_allocate/{name}"), || {
            black_box(allocate(black_box(&analysis), &PipelineConfig::default()));
        }));
        rows.push(bench(&format!("load_elim/{name}"), || {
            black_box(eliminate_redundant_loads(black_box(&p)).unwrap());
        }));
    }
    {
        let p = fig6(1000);
        rows.push(bench("store_elim/fig6", || {
            black_box(eliminate_redundant_stores(black_box(&p)).unwrap());
        }));
    }
    {
        let p = fig7(1000);
        rows.push(bench("controlled_unroll/fig7", || {
            black_box(controlled_unroll(black_box(&p), &UnrollConfig::default()).unwrap());
        }));
    }
    report("planning", &rows);
}

fn bench_simulated_execution() {
    let mut rows = Vec::new();
    for (name, p) in [("fig5", fig5(1000)), ("smooth3", smooth3(1000))] {
        let analysis = analyze_loop(&p).unwrap();
        let alloc = allocate(&analysis, &PipelineConfig::default());
        let conv = compile(&p).unwrap();
        let pipe = compile_with(&p, &alloc.plan).unwrap();
        for (variant, compiled) in [("conventional", conv), ("pipelined", pipe)] {
            rows.push(bench(&format!("{variant}/{name}"), || {
                let mut m = Machine::new();
                for a in p.symbols.array_ids() {
                    for k in -8..1100 {
                        m.set_mem(a, k, k % 23);
                    }
                }
                for v in p.symbols.var_ids() {
                    m.set_reg(compiled.scalar_regs[&v], 2);
                }
                m.run(&compiled.code).unwrap();
                black_box(m.stats);
            }));
        }
    }
    report("simulated_execution", &rows);
}

fn main() {
    bench_planning();
    bench_simulated_execution();
}
