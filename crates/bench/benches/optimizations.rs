//! Optimization pipelines end to end: planning time for register
//! pipelining, the source transformations, the unrolling controller, and
//! the simulated execution of conventional versus pipelined code (the
//! machine-level effect behind the E4 table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arrayflow_analyses::analyze_loop;
use arrayflow_machine::{compile, compile_with, Machine};
use arrayflow_opt::{
    allocate, controlled_unroll, eliminate_redundant_loads, eliminate_redundant_stores,
    PipelineConfig, UnrollConfig,
};
use arrayflow_workloads::{clipped_wavefront, fig5, fig6, fig7, smooth3};

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planning");
    group.sample_size(10);
    for (name, p) in [
        ("fig5", fig5(1000)),
        ("smooth3", smooth3(1000)),
        ("clipped_wavefront", clipped_wavefront(1000)),
    ] {
        let analysis = analyze_loop(&p).unwrap();
        group.bench_with_input(
            BenchmarkId::new("pipeline_allocate", name),
            &analysis,
            |b, a| b.iter(|| allocate(std::hint::black_box(a), &PipelineConfig::default())),
        );
        group.bench_with_input(BenchmarkId::new("load_elim", name), &p, |b, p| {
            b.iter(|| eliminate_redundant_loads(std::hint::black_box(p)).unwrap())
        });
    }
    group.bench_function("store_elim/fig6", |b| {
        let p = fig6(1000);
        b.iter(|| eliminate_redundant_stores(std::hint::black_box(&p)).unwrap())
    });
    group.bench_function("controlled_unroll/fig7", |b| {
        let p = fig7(1000);
        b.iter(|| controlled_unroll(std::hint::black_box(&p), &UnrollConfig::default()).unwrap())
    });
    group.finish();
}

fn bench_simulated_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_execution");
    group.sample_size(10);
    for (name, p) in [("fig5", fig5(1000)), ("smooth3", smooth3(1000))] {
        let analysis = analyze_loop(&p).unwrap();
        let alloc = allocate(&analysis, &PipelineConfig::default());
        let conv = compile(&p).unwrap();
        let pipe = compile_with(&p, &alloc.plan).unwrap();
        for (variant, compiled) in [("conventional", conv), ("pipelined", pipe)] {
            group.bench_with_input(
                BenchmarkId::new(variant, name),
                &compiled,
                |b, compiled| {
                    b.iter(|| {
                        let mut m = Machine::new();
                        for a in p.symbols.array_ids() {
                            for k in -8..1100 {
                                m.set_mem(a, k, k % 23);
                            }
                        }
                        for v in p.symbols.var_ids() {
                            m.set_reg(compiled.scalar_regs[&v], 2);
                        }
                        m.run(&compiled.code).unwrap();
                        m.stats
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_planning, bench_simulated_execution);
criterion_main!(benches);
