//! (under construction)
