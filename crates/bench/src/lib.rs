#![warn(missing_docs)]
//! Benchmark harness support.
//!
//! The workspace builds offline with no external dependencies, so the
//! benches do not use criterion; this module provides the small timing
//! harness they share: warmup, adaptive iteration count, and median-of-runs
//! reporting. Each bench target is `harness = false` and prints one table.

use std::time::{Duration, Instant};

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Case label, e.g. `solver/available/128`.
    pub name: String,
    /// Iterations per timed run.
    pub iters: u32,
    /// Median wall-clock per iteration.
    pub per_iter: Duration,
}

impl Measurement {
    /// Nanoseconds per iteration.
    pub fn ns(&self) -> f64 {
        self.per_iter.as_secs_f64() * 1e9
    }
}

/// Times `f`, returning its result and the elapsed wall clock.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed(), r)
}

/// Measures `f` with warmup and median-of-5 runs, auto-scaling the
/// iteration count so each timed run lasts at least ~20 ms.
pub fn bench(name: &str, mut f: impl FnMut()) -> Measurement {
    // Warmup + calibration: find an iteration count lasting >= 20 ms.
    let mut iters: u32 = 1;
    loop {
        let (d, ()) = time(|| {
            for _ in 0..iters {
                f();
            }
        });
        if d >= Duration::from_millis(20) || iters >= 1 << 20 {
            break;
        }
        // Aim past the threshold with headroom.
        let scale = (0.025 / d.as_secs_f64().max(1e-9)).ceil();
        iters = iters.saturating_mul((scale as u32).clamp(2, 1024));
    }
    let mut runs: Vec<Duration> = (0..5)
        .map(|_| {
            let (d, ()) = time(|| {
                for _ in 0..iters {
                    f();
                }
            });
            d
        })
        .collect();
    runs.sort();
    let median = runs[runs.len() / 2];
    Measurement {
        name: name.to_string(),
        iters,
        per_iter: median / iters,
    }
}

/// Prints a measurement table with aligned columns.
pub fn report(title: &str, rows: &[Measurement]) {
    println!("\n== {title} ==");
    let width = rows
        .iter()
        .map(|r| r.name.len())
        .max()
        .unwrap_or(10)
        .max(10);
    for r in rows {
        println!(
            "{:<width$}  {:>12.1} ns/iter  ({} iters/run)",
            r.name,
            r.ns(),
            r.iters,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let m = bench("spin", || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(m.ns() > 0.0);
        assert!(m.iters >= 1);
    }
}
