//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p arrayflow-bench --bin tables            # all
//! cargo run --release -p arrayflow-bench --bin tables -- e4 e7   # subset
//! ```

use arrayflow_analyses::{analyze_loop, analyze_nest, report};
use arrayflow_baselines::{compare_reuses, reuses_from_state, simulate_available};
use arrayflow_ir::interp::run_with;
use arrayflow_ir::{Env, Program};
use arrayflow_machine::{
    compile, compile_with, compile_with_style, CostModel, Machine, PipelineStyle,
};
use arrayflow_opt::{
    allocate, dep_graph, eliminate_redundant_loads, eliminate_redundant_stores, unroll,
    PipelineConfig,
};
use arrayflow_workloads::{
    all_kernels, fig1, fig4, fig5, fig6, fig7, pair_sum, random_loop, LoopShape,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |tag: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(tag));

    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("e8") {
        e8();
    }
    if want("e9") {
        e9();
    }
    if want("e10") {
        e10();
    }
}

fn banner(tag: &str, what: &str) {
    println!("\n================================================================");
    println!("{tag}: {what}");
    println!("================================================================");
}

/// E1 — Table 1: must-reaching definitions on the Fig. 1 loop, per pass.
fn e1() {
    banner(
        "E1",
        "Table 1 — must-reaching definitions on Fig. 1 (per pass)",
    );
    println!("{}", report::render_table1(&fig1(None)).unwrap());
}

/// E2 — Fig. 2 lattice behaviour: solver effort per instance on Fig. 1,
/// plus the 3·N scaling law across loop sizes.
fn e2() {
    banner(
        "E2",
        "lattice/solver behaviour on Fig. 1 (paper bounds: 3N must / 2N may)",
    );
    let a = analyze_loop(&fig1(None)).unwrap();
    for (name, inst) in [
        ("must-reaching ", &a.reaching),
        ("δ-available   ", &a.available),
        ("δ-busy (bwd)  ", &a.busy),
        ("δ-reaching may", &a.reaching_refs),
    ] {
        println!("{name} {}", report::render_stats(inst, &a.graph));
    }
    println!(
        "
scaling (δ-available on random loops): visits to fix vs 3·N"
    );
    println!(
        "{:<8} {:>6} {:>14} {:>8}",
        "stmts", "N", "visits_to_fix", "3·N"
    );
    for stmts in [8usize, 32, 128, 512] {
        let p = random_loop(
            &LoopShape {
                stmts,
                arrays: 4,
                cond_pct: 25,
                ..LoopShape::default()
            },
            42,
        );
        let a = analyze_loop(&p).unwrap();
        let n = a.graph.len();
        println!(
            "{:<8} {:>6} {:>14} {:>8}",
            stmts,
            n,
            a.available.sol.stats.visits_to_fix(n),
            3 * n
        );
    }
}

/// E3 — Fig. 4: multi-dimensional recurrences via linearization.
fn e3() {
    banner(
        "E3",
        "Fig. 4 — recurrences in a loop nest (linearized subscripts)",
    );
    let p = fig4();
    for a in analyze_nest(&p).unwrap() {
        let iv = a.symbols.var_name(a.graph.iv).to_string();
        let reuses = a.reuse_pairs();
        println!("with respect to `{iv}`: {} recurrence(s)", reuses.len());
        for r in reuses {
            println!(
                "  {} <- {} at distance {}",
                a.site_text(r.use_site),
                a.site_text(r.gen_site),
                r.distance
            );
        }
    }
    println!("statement (3) Z[i+1,j] := Z[i,j-1]: not expressible per single IV (expected)");
    // §6 extension: distance vectors over the whole nest.
    let (ivs, sites) = arrayflow_analyses::nest_sites(&p).unwrap();
    let names: Vec<&str> = ivs.iter().map(|&v| p.symbols.var_name(v)).collect();
    println!("distance vectors over ({}):", names.join(", "));
    for d in arrayflow_analyses::nest_distance_vectors(&p).unwrap() {
        if sites[d.src].is_def {
            println!(
                "  {} -> {}: {:?}",
                arrayflow_ir::pretty::ref_to_string(&p.symbols, &sites[d.src].aref),
                arrayflow_ir::pretty::ref_to_string(&p.symbols, &sites[d.dst].aref),
                d.distances
            );
        }
    }
}

/// E4 — Fig. 5: register pipelining measured on the simulator.
fn e4() {
    banner(
        "E4",
        "Fig. 5 — register pipelining (loads/stores/moves/cycles per variant)",
    );
    let cost = CostModel::default();
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>10} {:>6}",
        "kernel", "loads", "stores", "moves", "alu", "cycles", "regs"
    );
    for (name, p) in [
        ("fig5/conventional", fig5(1000)),
        ("smooth3", arrayflow_workloads::smooth3(1000)),
        (
            "clipped_wavefront",
            arrayflow_workloads::clipped_wavefront(1000),
        ),
    ] {
        let analysis = analyze_loop(&p).unwrap();
        let alloc = allocate(&analysis, &PipelineConfig::default());
        let conv = compile(&p).unwrap();
        let pipe = compile_with(&p, &alloc.plan).unwrap();
        let unrolled = compile_with_style(&p, &alloc.plan, PipelineStyle::Unrolled).unwrap();
        for (variant, c) in [("conv", &conv), ("pipe", &pipe), ("unroll", &unrolled)] {
            let mut m = Machine::new();
            for arr in p.symbols.array_ids() {
                for k in -8..1100 {
                    m.set_mem(arr, k, k % 23);
                }
            }
            for v in p.symbols.var_ids() {
                m.set_reg(c.scalar_regs[&v], 2);
            }
            m.run(&c.code).unwrap();
            println!(
                "{:<22} {:>9} {:>9} {:>9} {:>9} {:>10} {:>6}",
                format!("{name}/{variant}"),
                m.stats.loads,
                m.stats.stores,
                m.stats.moves,
                m.stats.alu,
                m.stats.cycles(&cost),
                if variant == "conv" {
                    0
                } else {
                    alloc.registers_used
                },
            );
        }
    }
}

fn measure_ir(p: &Program) -> (u64, u64) {
    let env = run_with(p, |e: &mut Env| {
        for a in p.symbols.array_ids() {
            for k in -8..1200 {
                e.set_elem(a, vec![k], k % 13);
            }
        }
        for v in p.symbols.var_ids() {
            e.set_scalar(v, 1);
        }
    })
    .unwrap();
    (env.stats.array_reads, env.stats.array_writes)
}

/// E5 — Fig. 6: redundant store elimination.
fn e5() {
    banner(
        "E5",
        "Fig. 6 — redundant store elimination (array writes before/after)",
    );
    let p = fig6(1000);
    let se = eliminate_redundant_stores(&p).unwrap();
    let (_, w0) = measure_ir(&p);
    let (_, w1) = measure_ir(&se.program);
    println!(
        "stores removed: {}; unpeeled iterations: {}; array writes {w0} -> {w1}",
        se.removed.len(),
        se.unpeeled
    );
}

/// E6 — Fig. 7: redundant load elimination.
fn e6() {
    banner(
        "E6",
        "Fig. 7 — redundant load elimination (array reads before/after)",
    );
    let p = fig7(1000);
    let le = eliminate_redundant_loads(&p).unwrap();
    let (r0, _) = measure_ir(&p);
    let (r1, _) = measure_ir(&le.program);
    println!(
        "loads replaced: {}; temp chains: {}; array reads {r0} -> {r1}",
        le.replaced_uses, le.chains
    );
}

/// E7 — §3.2/§3.3 efficiency: framework node visits vs explicit instance
/// propagation, as the reuse distance grows.
fn e7() {
    banner(
        "E7",
        "pass bounds — framework visits vs Rau-style instance simulation",
    );
    println!(
        "{:<18} {:>6} {:>16} {:>12} {:>12} {:>10}",
        "workload", "N", "framework", "sim visits", "sim iters", "agree"
    );
    for d in [1i64, 2, 4, 8, 16, 32] {
        let p = pair_sum(200, d);
        let a = analyze_loop(&p).unwrap();
        let sim = simulate_available(&a.graph, &a.sites, 64, 500);
        let fw_reuses: std::collections::BTreeSet<_> = a
            .reuse_pairs()
            .into_iter()
            .map(|r| (r.gen_site, r.use_site, r.distance))
            .collect();
        let sim_reuses: std::collections::BTreeSet<_> = reuses_from_state(&a.graph, &a.sites, &sim)
            .into_iter()
            .collect();
        println!(
            "{:<18} {:>6} {:>16} {:>12} {:>12} {:>10}",
            format!("pair_sum d={d}"),
            a.graph.len(),
            a.available.sol.stats.visits_to_fix(a.graph.len()),
            sim.node_visits,
            sim.iterations,
            fw_reuses == sim_reuses
        );
    }
    // Random structured loops: average over 20 seeds.
    let shape = LoopShape::default();
    let mut fw = 0usize;
    let mut sim_v = 0usize;
    let mut max_pass = 0usize;
    for seed in 0..20 {
        let p = random_loop(&shape, 400 + seed);
        let a = analyze_loop(&p).unwrap();
        fw += a.available.sol.stats.visits_to_fix(a.graph.len());
        max_pass = max_pass.max(a.available.sol.stats.changing_passes);
        let sim = simulate_available(&a.graph, &a.sites, 32, 500);
        sim_v += sim.node_visits;
    }
    println!(
        "random x20:        avg framework visits {}, avg sim visits {}, max changing passes {}",
        fw / 20,
        sim_v / 20,
        max_pass
    );
}

/// E8 — §4.3: predicted vs measured critical path of unrolled bodies.
fn e8() {
    banner(
        "E8",
        "controlled unrolling — predicted l_unroll vs ground truth",
    );
    println!(
        "{:<20} {:>3} {:>10} {:>10} {:>8}",
        "kernel", "f", "predicted", "measured", "bound"
    );
    for (name, p) in all_kernels(64) {
        let Ok(a) = analyze_loop(&p) else { continue };
        let g = dep_graph(&a, 8);
        let l1 = g.critical_path(1);
        for f in [2u64, 4] {
            let predicted = g.critical_path(f);
            let Ok(u) = unroll(&p, f) else { continue };
            let main = match &u.body[0] {
                arrayflow_ir::Stmt::Do(l) => l.clone(),
                _ => continue,
            };
            let Ok(ua) = arrayflow_analyses::LoopAnalysis::of_loop(&main, &u.symbols) else {
                continue;
            };
            let measured = dep_graph(&ua, 1).critical_path(1);
            println!(
                "{:<20} {:>3} {:>10} {:>10} {:>8}",
                name,
                f,
                predicted,
                measured,
                if predicted as u64 <= 2 * f / 2 * l1 as u64 * f {
                    "l..2l ok"
                } else {
                    "!"
                }
            );
        }
    }
}

/// E10 — the full pipeline on a Livermore-style kernel suite: reuses,
/// pipelined load reduction, redundancy elimination and the unrolling
/// decision, per kernel.
fn e10() {
    banner(
        "E10",
        "kernel suite — end-to-end optimization summary (UB = 1000)",
    );
    println!(
        "{:<20} {:>7} {:>11} {:>11} {:>9} {:>9} {:>7}",
        "kernel", "reuses", "loads conv", "loads pipe", "st.elim", "ld.elim", "unroll"
    );
    for (name, p) in arrayflow_workloads::livermore_kernels(1000) {
        let mut p = p;
        arrayflow_ir::normalize(&mut p);
        let Ok(analysis) = analyze_loop(&p) else {
            continue;
        };
        let reuses = analysis.reuse_pairs().len();
        let alloc = allocate(&analysis, &PipelineConfig::default());
        let conv = compile(&p).unwrap();
        let pipe = compile_with(&p, &alloc.plan).unwrap();
        let run = |c: &arrayflow_machine::Compiled| {
            let mut m = Machine::new();
            for a in p.symbols.array_ids() {
                for k in -16..1100 {
                    m.set_mem(a, k, (k % 13) + 1);
                }
            }
            for v in p.symbols.var_ids() {
                m.set_reg(c.scalar_regs[&v], 2);
            }
            m.run(&c.code).unwrap();
            m.stats
        };
        let s_conv = run(&conv);
        let s_pipe = run(&pipe);
        let se = eliminate_redundant_stores(&p).unwrap();
        let le = eliminate_redundant_loads(&p).unwrap();
        let unroll_decision =
            arrayflow_opt::controlled_unroll(&p, &arrayflow_opt::UnrollConfig::default())
                .map(|r| r.factor)
                .unwrap_or(1);
        println!(
            "{:<20} {:>7} {:>11} {:>11} {:>9} {:>9} {:>7}",
            name,
            reuses,
            s_conv.loads,
            s_pipe.loads,
            se.removed.len(),
            le.replaced_uses,
            unroll_decision
        );
    }
}

/// E9 — §1/§5: flow-sensitive framework vs dependence-based scalar
/// replacement under conditional control flow.
fn e9() {
    banner(
        "E9",
        "flow sensitivity — framework vs dependence-based scalar replacement",
    );
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>10}",
        "kernel", "framework", "dep-based", "fw-only", "base-only"
    );
    for (name, p) in all_kernels(100) {
        let Ok(a) = analyze_loop(&p) else { continue };
        let cmp = compare_reuses(&a);
        println!(
            "{:<20} {:>10} {:>10} {:>10} {:>10}",
            name, cmp.framework, cmp.dependence_based, cmp.framework_only, cmp.baseline_only
        );
    }
    // Conditional-heavy random loops, aggregated.
    let shape = LoopShape {
        cond_pct: 60,
        ..LoopShape::default()
    };
    let mut fw = 0;
    let mut base = 0;
    let mut fw_only = 0;
    let mut base_only = 0;
    for seed in 0..30 {
        let p = random_loop(&shape, 900 + seed);
        let a = analyze_loop(&p).unwrap();
        let cmp = compare_reuses(&a);
        fw += cmp.framework;
        base += cmp.dependence_based;
        fw_only += cmp.framework_only;
        base_only += cmp.baseline_only;
    }
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>10}   (30 random conditional-heavy loops)",
        "random/cond60", fw, base, fw_only, base_only
    );
}
