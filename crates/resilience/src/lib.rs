#![warn(missing_docs)]
//! Fault-tolerance primitives for the arrayflow serving stack.
//!
//! Worst-case data-flow analysis cost can sit far above the paper's
//! three-pass common case on non-separable or adversarial inputs, so a
//! serving stack for this framework has to treat solver blow-ups,
//! crashes and I/O faults as *routine events to contain*, not bugs to
//! hope away. This crate supplies the self-contained building blocks the
//! runtime crates wire in — zero dependencies, like the rest of the
//! workspace:
//!
//! * [`FaultSurface`] / [`FaultPlan`] — deterministic, seeded fault
//!   injection behind one trait. The runtime checks an
//!   `Option<Arc<dyn FaultSurface>>` that is `None` in production, so
//!   the seams cost one branch when no plan is installed. A
//!   [`FaultPlan`] parses from a compact spec string
//!   (`seed=42,solver_panic=10%,store_io=5%`) and makes every decision
//!   from a SplitMix64 stream — the same generator the workload crate
//!   uses — so a chaos run is exactly reproducible from its spec.
//! * [`CircuitBreaker`] — the classic closed → open → half-open state
//!   machine that turns a persistently failing dependency (a dead disk)
//!   into a cheap local decision instead of a doomed syscall per
//!   request.
//! * [`Backoff`] — capped exponential backoff with full jitter for
//!   retrying clients.
//! * [`RetryBudget`] — a token bucket capping total retry volume per
//!   window, the aggregate complement of per-attempt backoff.
//! * [`CancelToken`] — a shared sticky flag bridging the layer that
//!   learns a request is dead (connection teardown) to the layer
//!   spending on it (a worker mid-solve).
//! * [`panic_message`] — extracts the human-readable payload of a caught
//!   panic so `catch_unwind` sites can turn it into a typed error.

pub mod backoff;
pub mod breaker;
pub mod budget;
pub mod cancel;
pub mod fault;

pub use backoff::Backoff;
pub use breaker::{BreakerState, CircuitBreaker, Transition};
pub use budget::RetryBudget;
pub use cancel::CancelToken;
pub use fault::{FaultCounts, FaultPlan, FaultSurface};

/// Extracts the human-readable message from a payload caught by
/// [`std::panic::catch_unwind`]. Panics carry either a `&'static str`
/// (from `panic!("literal")`) or a `String` (from `panic!("{x}")`);
/// anything else renders as `"non-string panic payload"`.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn panic_message_extracts_both_payload_kinds() {
        let p = catch_unwind(|| panic!("static message")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "static message");
        let x = 7;
        let p = catch_unwind(AssertUnwindSafe(|| panic!("formatted {x}"))).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
        let p = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}
