//! Capped exponential backoff with full jitter.
//!
//! The resilient client retries idempotent requests on transient
//! failures (broken connections, `overloaded` responses). Full jitter —
//! each delay drawn uniformly from `[0, min(cap, base·2^attempt))` —
//! avoids the synchronized retry herds that fixed exponential delays
//! produce when many clients fail at the same instant, while the cap
//! bounds worst-case added latency.

use std::time::Duration;

/// Capped exponential backoff with full jitter. Not thread-safe by
/// design: each retry loop owns one.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng_state: u64,
}

impl Backoff {
    /// A backoff whose `attempt`-th delay is uniform in
    /// `[0, min(cap, base·2^attempt))`. Jitter is seeded from the clock;
    /// use [`Backoff::with_seed`] for reproducible tests.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        let clock_seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Backoff::with_seed(base, cap, clock_seed)
    }

    /// Same as [`Backoff::new`] with an explicit jitter seed.
    pub fn with_seed(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            attempt: 0,
            rng_state: seed,
        }
    }

    /// The next delay to sleep before retrying; advances the attempt
    /// counter. The envelope doubles each call until it reaches the cap.
    pub fn next_delay(&mut self) -> Duration {
        let envelope = self
            .base
            .checked_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX))
            .map(|d| d.min(self.cap))
            .unwrap_or(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let nanos = envelope.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        // SplitMix64 step for the jitter draw.
        self.rng_state = self.rng_state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        Duration::from_nanos(z % nanos)
    }

    /// How many delays have been handed out since the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Starts the envelope over after a success.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_stay_inside_the_growing_envelope() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut b = Backoff::with_seed(base, cap, 42);
        for attempt in 0..20 {
            let envelope = base
                .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .map(|d| d.min(cap))
                .unwrap_or(cap);
            let d = b.next_delay();
            assert!(
                d < envelope.max(Duration::from_nanos(1)),
                "attempt {attempt}: {d:?} outside {envelope:?}"
            );
            assert!(d <= cap);
        }
    }

    #[test]
    fn jitter_actually_varies() {
        let mut b = Backoff::with_seed(Duration::from_millis(50), Duration::from_secs(1), 7);
        b.next_delay();
        b.next_delay();
        b.next_delay();
        let delays: Vec<Duration> = (0..8).map(|_| b.next_delay()).collect();
        let distinct: std::collections::HashSet<_> = delays.iter().collect();
        assert!(
            distinct.len() > 1,
            "full jitter must not be constant: {delays:?}"
        );
    }

    #[test]
    fn reset_restarts_the_envelope() {
        let base = Duration::from_millis(10);
        let mut b = Backoff::with_seed(base, Duration::from_secs(10), 3);
        for _ in 0..10 {
            b.next_delay();
        }
        assert_eq!(b.attempt(), 10);
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert!(
            b.next_delay() < base,
            "first post-reset delay is inside the base envelope"
        );
    }

    #[test]
    fn same_seed_same_delays() {
        let mut a = Backoff::with_seed(Duration::from_millis(5), Duration::from_secs(1), 99);
        let mut b = Backoff::with_seed(Duration::from_millis(5), Duration::from_secs(1), 99);
        for _ in 0..16 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn zero_base_never_panics() {
        let mut b = Backoff::with_seed(Duration::ZERO, Duration::ZERO, 1);
        for _ in 0..5 {
            assert_eq!(b.next_delay(), Duration::ZERO);
        }
    }
}
