//! Deterministic fault injection behind the [`FaultSurface`] trait.
//!
//! The runtime crates each expose one *seam* — a single call into an
//! optional `Arc<dyn FaultSurface>` at the point where a real fault
//! would strike:
//!
//! * the store's append path asks [`FaultSurface::store_io`] whether this
//!   write should fail with an injected I/O error (a dying disk);
//! * the engine's solve path asks [`FaultSurface::solver_panic`] whether
//!   this instance should panic (a solver blow-up on an adversarial
//!   input) and [`FaultSurface::solve_latency`] whether to stall first
//!   (a pathological, slow-to-converge input);
//! * the service's worker loop asks [`FaultSurface::worker_exit`]
//!   whether the thread should die (a crashed worker the supervisor must
//!   replace).
//!
//! With no surface installed every seam is a `None` check — zero
//! allocations, zero atomics, one branch. [`FaultPlan`] is the standard
//! implementation: every decision is drawn from a SplitMix64 stream (the
//! same generator `arrayflow-workloads` uses for programs, kept local so
//! this crate stays a dependency-free leaf), so a chaos run is exactly
//! reproducible from its spec string and two runs with the same spec
//! inject the same faults at the same call indices.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The injection seams the runtime exposes. Every method defaults to
/// "no fault", so custom test surfaces override only the seam under
/// test.
pub trait FaultSurface: Send + Sync + std::fmt::Debug {
    /// Store write seam: `Some(error)` makes this append fail as if the
    /// disk had.
    fn store_io(&self) -> Option<io::Error> {
        None
    }

    /// Solver seam: `true` makes the caller panic mid-solve (the panic
    /// is caught and isolated by the engine).
    fn solver_panic(&self) -> bool {
        false
    }

    /// Solver latency seam: `Some(d)` stalls the solve phase by `d`
    /// before running, simulating a pathological input.
    fn solve_latency(&self) -> Option<Duration> {
        None
    }

    /// Worker seam: `true` makes the service worker thread exit, as if
    /// it had crashed; the supervisor must replace it.
    fn worker_exit(&self) -> bool {
        false
    }
}

/// How many faults a [`FaultPlan`] has injected so far, by seam.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Injected store I/O errors.
    pub store_io: u64,
    /// Injected solver panics.
    pub solver_panics: u64,
    /// Injected solve-phase stalls.
    pub latencies: u64,
    /// Injected worker exits.
    pub worker_exits: u64,
}

/// A seeded, deterministic fault plan parsed from a compact spec string.
///
/// ```text
/// seed=42,solver_panic=10%,store_io=5%,store_io_first=20,latency_us=500,latency=3%,worker_exit=1%
/// ```
///
/// * `seed=N` — the SplitMix64 seed (default 0). Same spec ⇒ same
///   decisions at the same call indices, across runs and platforms.
/// * `solver_panic=P%` — probability that one solve panics.
/// * `store_io=P%` — probability that one store append fails.
/// * `store_io_first=N` — additionally fail the *first* `N` appends
///   unconditionally; this is how a chaos drill trips the store circuit
///   breaker at a known point and then lets it recover.
/// * `latency_us=N` + `latency=P%` — stall `P%` of solves by `N` µs
///   (`latency` defaults to 100% when only `latency_us` is given).
/// * `worker_exit=P%` — probability that a service worker dies before
///   picking up its next job.
///
/// Percentages are integers in `0..=100`; the `%` suffix is optional.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    solver_panic_pct: u32,
    store_io_pct: u32,
    store_io_first: u64,
    latency_us: u64,
    latency_pct: u32,
    worker_exit_pct: u32,
    // Per-seam call counters: the position in the decision stream.
    store_io_calls: AtomicU64,
    solver_calls: AtomicU64,
    latency_calls: AtomicU64,
    worker_calls: AtomicU64,
    // Per-seam injection counters, for assertions and operator stats.
    store_io_injected: AtomicU64,
    solver_injected: AtomicU64,
    latency_injected: AtomicU64,
    worker_injected: AtomicU64,
}

// Distinct salts keep the four decision streams independent even though
// they share one seed.
const SALT_STORE_IO: u64 = 0x5354_4f52_455f_494f; // "STORE_IO"
const SALT_SOLVER: u64 = 0x534f_4c56_4552_5f50; // "SOLVER_P"
const SALT_LATENCY: u64 = 0x4c41_5445_4e43_595f; // "LATENCY_"
const SALT_WORKER: u64 = 0x574f_524b_4552_5f58; // "WORKER_X"

/// SplitMix64 finalizer evaluated at stream position `n` — the same
/// mixing constants as `arrayflow_workloads::prng::splitmix64`, applied
/// statelessly so concurrent seams never contend on shared PRNG state.
fn mix(seed: u64, salt: u64, n: u64) -> u64 {
    let mut z = (seed ^ salt.rotate_left(31))
        .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(n.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Parses a plan from its spec string (see the type docs for the
    /// grammar). The empty string is a valid plan that injects nothing.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let mut latency_pct_given = false;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan entry `{part}` is not key=value"))?;
            let percent = || -> Result<u32, String> {
                let v = value.strip_suffix('%').unwrap_or(value);
                let p: u32 = v
                    .parse()
                    .map_err(|_| format!("`{key}` wants an integer percentage, got `{value}`"))?;
                if p > 100 {
                    return Err(format!("`{key}={value}` exceeds 100%"));
                }
                Ok(p)
            };
            let count = || -> Result<u64, String> {
                value
                    .parse()
                    .map_err(|_| format!("`{key}` wants an integer, got `{value}`"))
            };
            match key.trim() {
                "seed" => plan.seed = count()?,
                "solver_panic" => plan.solver_panic_pct = percent()?,
                "store_io" => plan.store_io_pct = percent()?,
                "store_io_first" => plan.store_io_first = count()?,
                "latency_us" => plan.latency_us = count()?,
                "latency" => {
                    plan.latency_pct = percent()?;
                    latency_pct_given = true;
                }
                "worker_exit" => plan.worker_exit_pct = percent()?,
                other => return Err(format!("unknown fault plan key `{other}`")),
            }
        }
        if plan.latency_us > 0 && !latency_pct_given {
            plan.latency_pct = 100;
        }
        Ok(plan)
    }

    /// The seed the decision streams run on.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many faults have been injected so far, by seam.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            store_io: self.store_io_injected.load(Ordering::Relaxed),
            solver_panics: self.solver_injected.load(Ordering::Relaxed),
            latencies: self.latency_injected.load(Ordering::Relaxed),
            worker_exits: self.worker_injected.load(Ordering::Relaxed),
        }
    }

    /// One deterministic percent-draw on the seam's stream.
    fn draw(&self, salt: u64, calls: &AtomicU64, injected: &AtomicU64, pct: u32) -> bool {
        if pct == 0 {
            return false;
        }
        let n = calls.fetch_add(1, Ordering::Relaxed);
        let hit = mix(self.seed, salt, n) % 100 < pct as u64;
        if hit {
            injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

impl std::fmt::Display for FaultPlan {
    /// Renders the plan back as a canonical spec string.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed={},solver_panic={}%,store_io={}%,store_io_first={},latency_us={},latency={}%,worker_exit={}%",
            self.seed,
            self.solver_panic_pct,
            self.store_io_pct,
            self.store_io_first,
            self.latency_us,
            self.latency_pct,
            self.worker_exit_pct
        )
    }
}

impl FaultSurface for FaultPlan {
    fn store_io(&self) -> Option<io::Error> {
        if self.store_io_pct == 0 && self.store_io_first == 0 {
            return None;
        }
        let n = self.store_io_calls.fetch_add(1, Ordering::Relaxed);
        let hit = n < self.store_io_first
            || (self.store_io_pct > 0
                && mix(self.seed, SALT_STORE_IO, n) % 100 < self.store_io_pct as u64);
        if hit {
            self.store_io_injected.fetch_add(1, Ordering::Relaxed);
            return Some(io::Error::other(format!(
                "injected store I/O fault (call #{n})"
            )));
        }
        None
    }

    fn solver_panic(&self) -> bool {
        self.draw(
            SALT_SOLVER,
            &self.solver_calls,
            &self.solver_injected,
            self.solver_panic_pct,
        )
    }

    fn solve_latency(&self) -> Option<Duration> {
        if self.latency_us == 0 {
            return None;
        }
        self.draw(
            SALT_LATENCY,
            &self.latency_calls,
            &self.latency_injected,
            self.latency_pct,
        )
        .then(|| Duration::from_micros(self.latency_us))
    }

    fn worker_exit(&self) -> bool {
        self.draw(
            SALT_WORKER,
            &self.worker_calls,
            &self.worker_injected,
            self.worker_exit_pct,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_injects_nothing() {
        let plan = FaultPlan::parse("").unwrap();
        for _ in 0..100 {
            assert!(plan.store_io().is_none());
            assert!(!plan.solver_panic());
            assert!(plan.solve_latency().is_none());
            assert!(!plan.worker_exit());
        }
        assert_eq!(plan.counts(), FaultCounts::default());
    }

    #[test]
    fn same_spec_same_decisions() {
        let spec = "seed=42,solver_panic=30%,store_io=20,latency_us=5,latency=50%,worker_exit=10%";
        let a = FaultPlan::parse(spec).unwrap();
        let b = FaultPlan::parse(spec).unwrap();
        for _ in 0..500 {
            assert_eq!(a.solver_panic(), b.solver_panic());
            assert_eq!(a.store_io().is_some(), b.store_io().is_some());
            assert_eq!(a.solve_latency(), b.solve_latency());
            assert_eq!(a.worker_exit(), b.worker_exit());
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().solver_panics > 0, "30% over 500 draws must fire");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::parse("seed=1,solver_panic=50%").unwrap();
        let b = FaultPlan::parse("seed=2,solver_panic=50%").unwrap();
        let diverged = (0..200)
            .filter(|_| a.solver_panic() != b.solver_panic())
            .count();
        assert!(diverged > 0, "independent seeds must disagree somewhere");
    }

    #[test]
    fn rates_are_roughly_calibrated() {
        let plan = FaultPlan::parse("seed=7,solver_panic=25%").unwrap();
        let hits = (0..10_000).filter(|_| plan.solver_panic()).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn store_io_first_fails_exactly_the_prefix() {
        let plan = FaultPlan::parse("seed=3,store_io_first=5").unwrap();
        for i in 0..5 {
            assert!(plan.store_io().is_some(), "call {i} is in the burst");
        }
        for i in 5..50 {
            assert!(plan.store_io().is_none(), "call {i} is past the burst");
        }
        assert_eq!(plan.counts().store_io, 5);
    }

    #[test]
    fn latency_without_rate_defaults_to_every_solve() {
        let plan = FaultPlan::parse("latency_us=250").unwrap();
        assert_eq!(plan.solve_latency(), Some(Duration::from_micros(250)));
        assert_eq!(plan.solve_latency(), Some(Duration::from_micros(250)));
    }

    #[test]
    fn spec_errors_are_reported() {
        assert!(FaultPlan::parse("nonsense")
            .unwrap_err()
            .contains("key=value"));
        assert!(FaultPlan::parse("frob=1")
            .unwrap_err()
            .contains("unknown fault plan key"));
        assert!(FaultPlan::parse("solver_panic=101%")
            .unwrap_err()
            .contains("exceeds"));
        assert!(FaultPlan::parse("seed=abc")
            .unwrap_err()
            .contains("integer"));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let plan = FaultPlan::parse("seed=9,solver_panic=10,store_io=5%,latency_us=7").unwrap();
        let again = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan.to_string(), again.to_string());
    }
}
