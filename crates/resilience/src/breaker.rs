//! A circuit breaker for a persistently failing dependency.
//!
//! The store's write path uses one of these so a dead disk degrades the
//! service to memory-only at the cost of a single atomic check per
//! append, instead of a doomed syscall (plus error handling, plus metric
//! churn) per request:
//!
//! * **Closed** — normal operation; every failure is counted, every
//!   success resets the count. `threshold` consecutive failures trip the
//!   breaker.
//! * **Open** — all acquisitions are refused locally. After `cooldown`
//!   has elapsed the next acquisition is admitted as a *probe* and the
//!   breaker moves to half-open.
//! * **HalfOpen** — exactly one probe is in flight; other acquisitions
//!   are still refused. The probe's outcome decides: success closes the
//!   breaker, failure re-opens it and restarts the cooldown.
//!
//! Every state change is surfaced as a [`Transition`] returned from the
//! call that caused it, so callers can log it and update a gauge without
//! polling.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The three positions of the breaker's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Tripped; work is refused locally until the cooldown elapses.
    Open,
    /// One probe is in flight to test whether the dependency recovered.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name, used in stats output and stderr lines.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// Encoding for the `arrayflow_store_breaker_state` gauge:
    /// 0 = closed, 1 = half-open, 2 = open.
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A state change, reported by the call that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State before the change.
    pub from: BreakerState,
    /// State after the change.
    pub to: BreakerState,
    /// Consecutive failures observed at the moment of the change.
    pub consecutive_failures: u32,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    trips: u64,
}

/// Closed → open → half-open circuit breaker. Thread-safe; one short
/// mutex hold per call.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A breaker that trips after `threshold` consecutive failures and
    /// probes again `cooldown` after opening. A threshold of 0 is
    /// treated as 1 (a breaker that can never trip would be a no-op).
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                trips: 0,
            }),
        }
    }

    /// Asks whether one unit of work may proceed. Returns `(admitted,
    /// transition)`; a `Some` transition means this very call moved the
    /// breaker (open → half-open when the cooldown elapsed, admitting
    /// the caller as the probe).
    pub fn try_acquire(&self) -> (bool, Option<Transition>) {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed => (true, None),
            BreakerState::HalfOpen => (false, None),
            BreakerState::Open => {
                let elapsed = inner
                    .opened_at
                    .map(|t| t.elapsed() >= self.cooldown)
                    .unwrap_or(true);
                if elapsed {
                    let t = transition(&mut inner, BreakerState::HalfOpen);
                    (true, Some(t))
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Reports the outcome of an admitted unit of work. Returns the
    /// transition if this outcome moved the breaker: the threshold-th
    /// consecutive failure trips closed → open, the probe's outcome
    /// resolves half-open → closed (success) or → open (failure).
    pub fn record(&self, ok: bool) -> Option<Transition> {
        let mut inner = self.inner.lock().unwrap();
        match (inner.state, ok) {
            (BreakerState::Closed, true) => {
                inner.consecutive_failures = 0;
                None
            }
            (BreakerState::Closed, false) => {
                inner.consecutive_failures += 1;
                (inner.consecutive_failures >= self.threshold).then(|| self.open(&mut inner))
            }
            (BreakerState::HalfOpen, true) => {
                inner.consecutive_failures = 0;
                Some(transition(&mut inner, BreakerState::Closed))
            }
            (BreakerState::HalfOpen, false) => {
                inner.consecutive_failures += 1;
                Some(self.open(&mut inner))
            }
            // Work admitted before the trip may report after it; the
            // breaker has already made its decision.
            (BreakerState::Open, _) => None,
        }
    }

    fn open(&self, inner: &mut Inner) -> Transition {
        inner.trips += 1;
        inner.opened_at = Some(Instant::now());
        transition(inner, BreakerState::Open)
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().unwrap().state
    }

    /// How many times the breaker has tripped to open, ever.
    pub fn trips(&self) -> u64 {
        self.inner.lock().unwrap().trips
    }
}

fn transition(inner: &mut Inner, to: BreakerState) -> Transition {
    let t = Transition {
        from: inner.state,
        to,
        consecutive_failures: inner.consecutive_failures,
    };
    inner.state = to;
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_closed_under_isolated_failures() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        for _ in 0..10 {
            assert_eq!(b.record(false), None);
            assert_eq!(b.record(false), None);
            assert_eq!(b.record(true), None); // success resets the streak
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn trips_on_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        assert_eq!(b.record(false), None);
        assert_eq!(b.record(false), None);
        let t = b.record(false).expect("third failure trips");
        assert_eq!(t.from, BreakerState::Closed);
        assert_eq!(t.to, BreakerState::Open);
        assert_eq!(t.consecutive_failures, 3);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // While open (cooldown not elapsed), everything is refused.
        assert_eq!(b.try_acquire(), (false, None));
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let b = CircuitBreaker::new(1, Duration::ZERO);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);

        // Cooldown of zero: the next acquire is admitted as the probe.
        let (ok, t) = b.try_acquire();
        assert!(ok);
        assert_eq!(t.unwrap().to, BreakerState::HalfOpen);
        // A second caller is refused while the probe is in flight.
        assert_eq!(b.try_acquire(), (false, None));
        // Probe fails: back to open, counted as another trip.
        assert_eq!(b.record(false).unwrap().to, BreakerState::Open);
        assert_eq!(b.trips(), 2);

        // Probe again, succeed this time: closed and admitting.
        let (ok, _) = b.try_acquire();
        assert!(ok);
        assert_eq!(b.record(true).unwrap().to, BreakerState::Closed);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.try_acquire(), (true, None));
    }

    #[test]
    fn open_cooldown_is_respected() {
        let b = CircuitBreaker::new(1, Duration::from_secs(3600));
        b.record(false);
        for _ in 0..5 {
            assert_eq!(b.try_acquire(), (false, None), "cooldown far from elapsed");
        }
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn late_reports_after_trip_are_ignored() {
        let b = CircuitBreaker::new(1, Duration::from_secs(3600));
        b.record(false);
        assert_eq!(b.record(true), None);
        assert_eq!(b.record(false), None);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(BreakerState::Closed.as_gauge(), 0);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 1);
        assert_eq!(BreakerState::Open.as_gauge(), 2);
        assert_eq!(BreakerState::HalfOpen.to_string(), "half-open");
    }
}
