//! Retry budgets: a token bucket capping total retry *volume* per window.
//!
//! Per-attempt exponential backoff ([`crate::Backoff`]) shapes when one
//! caller retries; it does nothing about how *much* a fleet of callers
//! retries in aggregate. Under overload that aggregate is the metastable
//! amplifier: every timeout mints a retry, retries deepen the queues
//! that caused the timeouts. A [`RetryBudget`] bounds the amplification
//! factor — retries spend tokens, tokens refill at a fixed rate plus a
//! small burst allowance, and when the bucket is dry the original error
//! surfaces instead of another attempt.

use std::time::Instant;

/// A token bucket metering retries. Milli-token integer arithmetic keeps
/// the type `Eq`-free of float drift and exactly testable.
#[derive(Debug)]
pub struct RetryBudget {
    /// Bucket capacity, in milli-tokens.
    capacity_milli: u64,
    /// Tokens currently in the bucket, in milli-tokens.
    level_milli: u64,
    /// Refill rate, in milli-tokens per second.
    refill_milli_per_sec: u64,
    /// Last refill time.
    last: Instant,
    /// Retries denied because the bucket was dry.
    denied: u64,
}

impl RetryBudget {
    /// A budget allowing `burst` back-to-back retries and a sustained
    /// rate of `per_sec` retries per second thereafter. A `burst` of 0
    /// disables retries outright.
    pub fn new(burst: u32, per_sec: f64) -> Self {
        let capacity_milli = burst as u64 * 1_000;
        Self {
            capacity_milli,
            level_milli: capacity_milli,
            refill_milli_per_sec: (per_sec.max(0.0) * 1_000.0) as u64,
            last: Instant::now(),
            denied: 0,
        }
    }

    /// Takes one retry token if available. `false` means the budget is
    /// exhausted and the caller should surface its error instead of
    /// retrying.
    pub fn try_acquire(&mut self) -> bool {
        self.refill();
        if self.level_milli >= 1_000 {
            self.level_milli -= 1_000;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Retries denied so far because the bucket was dry.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    fn refill(&mut self) {
        let now = Instant::now();
        let elapsed_ms = now.duration_since(self.last).as_millis() as u64;
        if elapsed_ms == 0 {
            return;
        }
        self.last = now;
        let add = self.refill_milli_per_sec.saturating_mul(elapsed_ms) / 1_000;
        self.level_milli = (self.level_milli + add).min(self.capacity_milli);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_dry() {
        let mut b = RetryBudget::new(3, 0.0);
        assert!(b.try_acquire());
        assert!(b.try_acquire());
        assert!(b.try_acquire());
        assert!(!b.try_acquire(), "burst of 3 must deny the 4th retry");
        assert_eq!(b.denied(), 1);
    }

    #[test]
    fn zero_burst_denies_everything() {
        let mut b = RetryBudget::new(0, 0.0);
        assert!(!b.try_acquire());
    }

    #[test]
    fn refill_restores_tokens() {
        let mut b = RetryBudget::new(1, 1000.0); // refills a token per ms
        assert!(b.try_acquire());
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(b.try_acquire(), "bucket should have refilled");
    }
}
