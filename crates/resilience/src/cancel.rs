//! Cooperative cancellation tokens.
//!
//! A [`CancelToken`] is the thinnest possible bridge between the layer
//! that *learns* a request is dead (the event loop seeing `POLLHUP` on
//! the owning connection) and the layer that is *spending* on it (a
//! worker mid-solve): one shared atomic flag. The owner keeps a clone
//! and flips it; every holder polls it at natural re-check points — job
//! dequeue, and between solver passes via the `should_stop` seam in
//! `arrayflow-core`. Cancellation is level-triggered and sticky: once
//! cancelled, a token stays cancelled forever.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, sticky cancellation flag. Cloning is cheap (one `Arc`
/// bump); all clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flips the flag. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
        // Sticky and idempotent.
        t.cancel();
        assert!(t.is_cancelled());
    }
}
