//! Execution and cost accounting for machine programs.

use std::collections::BTreeMap;
use std::fmt;

use arrayflow_ir::{ArrayId, BinOp};

use crate::inst::{Addr, Inst, MProgram, Operand, Reg};

/// Cost model: cycles per instruction class. The default charges `Cm = 4`
/// for memory operations (the paper's `Cm`, the average cost of a load)
/// and one cycle for everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cycles per load.
    pub load: u64,
    /// Cycles per store.
    pub store: u64,
    /// Cycles per register move.
    pub mov: u64,
    /// Cycles per ALU operation.
    pub alu: u64,
    /// Cycles per (taken or untaken) branch/jump.
    pub branch: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            load: 4,
            store: 4,
            mov: 1,
            alu: 1,
            branch: 1,
        }
    }
}

/// Dynamic execution counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Register moves executed.
    pub moves: u64,
    /// ALU operations executed.
    pub alu: u64,
    /// Branches and jumps executed.
    pub branches: u64,
    /// Total instructions executed.
    pub executed: u64,
}

impl SimStats {
    /// Total cycles under a cost model.
    pub fn cycles(&self, m: &CostModel) -> u64 {
        self.loads * m.load
            + self.stores * m.store
            + self.moves * m.mov
            + self.alu * m.alu
            + self.branches * m.branch
    }

    /// Memory operations (loads + stores).
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Simulator errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Integer division by zero.
    DivisionByZero,
    /// The instruction budget was exhausted.
    BudgetExceeded,
    /// A branch target was out of range.
    BadLabel(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DivisionByZero => write!(f, "division by zero"),
            SimError::BudgetExceeded => write!(f, "instruction budget exceeded"),
            SimError::BadLabel(l) => write!(f, "branch to invalid label {l}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Machine state: registers plus sparse per-array memory.
#[derive(Debug, Clone, Default)]
pub struct Machine {
    regs: Vec<i64>,
    mem: BTreeMap<ArrayId, BTreeMap<i64, i64>>,
    /// Statistics of the most recent [`Machine::run`].
    pub stats: SimStats,
    budget: u64,
}

impl Machine {
    /// Creates a machine with a generous default budget.
    pub fn new() -> Self {
        Self {
            budget: 500_000_000,
            ..Self::default()
        }
    }

    /// Sets a register before execution.
    pub fn set_reg(&mut self, r: Reg, v: i64) {
        if self.regs.len() <= r.0 as usize {
            self.regs.resize(r.0 as usize + 1, 0);
        }
        self.regs[r.0 as usize] = v;
    }

    /// Reads a register (zero if never written).
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs.get(r.0 as usize).copied().unwrap_or(0)
    }

    /// Seeds one array element.
    pub fn set_mem(&mut self, a: ArrayId, idx: i64, v: i64) {
        self.mem.entry(a).or_default().insert(idx, v);
    }

    /// Reads one array element (zero if never written).
    pub fn mem(&self, a: ArrayId, idx: i64) -> i64 {
        self.mem
            .get(&a)
            .and_then(|m| m.get(&idx))
            .copied()
            .unwrap_or(0)
    }

    /// The entire memory image, for equivalence checks.
    pub fn memory(&self) -> &BTreeMap<ArrayId, BTreeMap<i64, i64>> {
        &self.mem
    }

    fn op(&self, o: Operand) -> i64 {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(i) => i,
        }
    }

    fn addr(&self, a: Addr) -> i64 {
        a.base.map_or(0, |b| self.reg(b)) + a.offset
    }

    /// Executes the program from instruction 0 until `halt`.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&mut self, p: &MProgram) -> Result<(), SimError> {
        self.stats = SimStats::default();
        let mut pc = 0usize;
        loop {
            if self.budget == 0 {
                return Err(SimError::BudgetExceeded);
            }
            self.budget -= 1;
            let Some(inst) = p.insts.get(pc) else {
                return Err(SimError::BadLabel(pc));
            };
            self.stats.executed += 1;
            pc += 1;
            match inst {
                Inst::Load { dst, array, addr } => {
                    self.stats.loads += 1;
                    let idx = self.addr(*addr);
                    let v = self.mem(*array, idx);
                    self.set_reg(*dst, v);
                }
                Inst::Store { array, addr, src } => {
                    self.stats.stores += 1;
                    let idx = self.addr(*addr);
                    let v = self.op(*src);
                    self.set_mem(*array, idx, v);
                }
                Inst::Move { dst, src } => {
                    self.stats.moves += 1;
                    let v = self.op(*src);
                    self.set_reg(*dst, v);
                }
                Inst::Bin { op, dst, lhs, rhs } => {
                    self.stats.alu += 1;
                    let l = self.op(*lhs);
                    let r = self.op(*rhs);
                    let v = match op {
                        BinOp::Add => l.wrapping_add(r),
                        BinOp::Sub => l.wrapping_sub(r),
                        BinOp::Mul => l.wrapping_mul(r),
                        BinOp::Div => {
                            if r == 0 {
                                return Err(SimError::DivisionByZero);
                            }
                            l / r
                        }
                    };
                    self.set_reg(*dst, v);
                }
                Inst::Branch {
                    op,
                    lhs,
                    rhs,
                    target,
                } => {
                    self.stats.branches += 1;
                    if op.eval(self.op(*lhs), self.op(*rhs)) {
                        pc = target.0;
                    }
                }
                Inst::Jump(l) => {
                    self.stats.branches += 1;
                    pc = l.0;
                }
                Inst::Halt => return Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Label;
    use arrayflow_ir::RelOp;

    #[test]
    fn runs_a_counting_loop() {
        // r0 = i, r1 = sum; for i in 1..=5 { sum += i }
        let mut p = MProgram::new();
        p.push(Inst::Move {
            dst: Reg(0),
            src: 1.into(),
        });
        p.push(Inst::Move {
            dst: Reg(1),
            src: 0.into(),
        });
        let top = p.here();
        p.push(Inst::Bin {
            op: BinOp::Add,
            dst: Reg(1),
            lhs: Reg(1).into(),
            rhs: Reg(0).into(),
        });
        p.push(Inst::Bin {
            op: BinOp::Add,
            dst: Reg(0),
            lhs: Reg(0).into(),
            rhs: 1.into(),
        });
        p.push(Inst::Branch {
            op: RelOp::Le,
            lhs: Reg(0).into(),
            rhs: 5.into(),
            target: top,
        });
        p.push(Inst::Halt);
        let mut m = Machine::new();
        m.run(&p).unwrap();
        assert_eq!(m.reg(Reg(1)), 15);
        assert_eq!(m.stats.branches, 5);
        assert_eq!(m.stats.alu, 10);
    }

    #[test]
    fn loads_and_stores_hit_memory() {
        let a = arrayflow_ir::ArrayId(0);
        let mut p = MProgram::new();
        p.push(Inst::Move {
            dst: Reg(0),
            src: 3.into(),
        });
        p.push(Inst::Load {
            dst: Reg(1),
            array: a,
            addr: Addr::indexed(Reg(0), 1), // A[4]
        });
        p.push(Inst::Store {
            array: a,
            addr: Addr::absolute(9),
            src: Reg(1).into(),
        });
        p.push(Inst::Halt);
        let mut m = Machine::new();
        m.set_mem(a, 4, 42);
        m.run(&p).unwrap();
        assert_eq!(m.mem(a, 9), 42);
        assert_eq!(m.stats.loads, 1);
        assert_eq!(m.stats.stores, 1);
        let cm = CostModel::default();
        assert_eq!(m.stats.cycles(&cm), 4 + 4 + 1);
    }

    #[test]
    fn division_by_zero_reported() {
        let mut p = MProgram::new();
        p.push(Inst::Bin {
            op: BinOp::Div,
            dst: Reg(0),
            lhs: 1.into(),
            rhs: 0.into(),
        });
        p.push(Inst::Halt);
        assert_eq!(Machine::new().run(&p), Err(SimError::DivisionByZero));
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let mut p = MProgram::new();
        p.push(Inst::Jump(Label(0)));
        p.push(Inst::Halt);
        let mut m = Machine {
            budget: 1000,
            ..Machine::default()
        };
        assert_eq!(m.run(&p), Err(SimError::BudgetExceeded));
    }

    #[test]
    fn falling_off_the_end_is_an_error() {
        let p = MProgram::new();
        assert_eq!(Machine::new().run(&p), Err(SimError::BadLabel(0)));
    }
}
