//! Finite register assignment for machine programs.
//!
//! The code generator uses an unbounded virtual register file; real targets
//! (and the paper's k-coloring discussion, §4.1.3) have `k` registers. This
//! module maps virtual registers onto `k` physical ones by linear scan over
//! conservative live intervals, spilling the rest to a dedicated memory
//! segment — so the *cost* of insufficient registers shows up as measurable
//! loads/stores in the simulator, exactly the trade-off the IRIG priority
//! function reasons about.

use std::collections::BTreeMap;
use std::fmt;

use arrayflow_ir::ArrayId;

use crate::inst::{Addr, Inst, Label, MProgram, Operand, Reg};
use crate::sim::Machine;

/// Where a virtual register ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A physical register.
    Phys(Reg),
    /// A spill slot (element index in the spill segment).
    Spill(i64),
}

/// Errors from [`assign_physical`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegAllocError {
    /// Fewer than three physical registers: two are reserved as spill
    /// scratch and at least one must remain allocatable.
    TooFewRegisters,
}

impl fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegAllocError::TooFewRegisters => {
                write!(
                    f,
                    "need at least 3 physical registers (2 are spill scratch)"
                )
            }
        }
    }
}

impl std::error::Error for RegAllocError {}

/// The rewritten program plus the virtual→location map.
#[derive(Debug, Clone)]
pub struct Allocated {
    /// The program over physical registers only.
    pub code: MProgram,
    /// Virtual register locations.
    pub map: BTreeMap<Reg, Loc>,
    /// The memory segment used for spill slots.
    pub spill_array: ArrayId,
    /// Physical registers actually used (including the two scratch).
    pub physical_used: u32,
    /// Number of spilled virtual registers.
    pub spilled: usize,
}

impl Allocated {
    /// Seeds the value of an (original) virtual register before running.
    pub fn seed(&self, m: &mut Machine, vreg: Reg, value: i64) {
        match self.map.get(&vreg) {
            Some(Loc::Phys(p)) => m.set_reg(*p, value),
            Some(Loc::Spill(slot)) => m.set_mem(self.spill_array, *slot, value),
            None => {} // the register never occurs in the program
        }
    }

    /// Reads the final value of an (original) virtual register.
    pub fn read(&self, m: &Machine, vreg: Reg) -> i64 {
        match self.map.get(&vreg) {
            Some(Loc::Phys(p)) => m.reg(*p),
            Some(Loc::Spill(slot)) => m.mem(self.spill_array, *slot),
            None => 0,
        }
    }
}

/// Maps the program onto `k` physical registers, spilling to
/// `spill_array` (a segment the program must not otherwise touch).
///
/// Live intervals are the conservative `[first occurrence, last
/// occurrence]` span of each virtual register — sound for this code shape
/// because loop bodies are contiguous instruction ranges, so a value live
/// across the back edge has both endpoints inside its interval.
///
/// # Errors
///
/// [`RegAllocError::TooFewRegisters`] when `k < 3`.
pub fn assign_physical(
    code: &MProgram,
    k: u32,
    spill_array: ArrayId,
    pinned: &[Reg],
) -> Result<Allocated, RegAllocError> {
    if k < 3 {
        return Err(RegAllocError::TooFewRegisters);
    }
    // Scratch registers for spill traffic; the rest are allocatable.
    let scratch = [Reg(k - 2), Reg(k - 1)];
    let allocatable = k - 2;

    // 1. Live intervals. Pinned registers (externally seeded scalars and
    // any value the caller reads back) are live for the whole program —
    // their occurrences alone would underestimate their lifetime.
    let mut first: BTreeMap<Reg, usize> = BTreeMap::new();
    let mut last: BTreeMap<Reg, usize> = BTreeMap::new();
    for &r in pinned {
        first.insert(r, 0);
        last.insert(r, code.insts.len());
    }
    for (idx, inst) in code.insts.iter().enumerate() {
        for r in regs_of(inst) {
            if !pinned.contains(&r) {
                first.entry(r).or_insert(idx);
                last.entry(r)
                    .and_modify(|e| *e = (*e).max(idx))
                    .or_insert(idx);
            }
        }
    }

    // 2. Linear scan (Poletto–Sarkar): allocate in order of interval start;
    // on pressure, spill the interval that ends last.
    let mut intervals: Vec<(Reg, usize, usize)> =
        first.iter().map(|(&r, &s)| (r, s, last[&r])).collect();
    intervals.sort_by_key(|&(_, s, _)| s);
    let mut map: BTreeMap<Reg, Loc> = BTreeMap::new();
    let mut free: Vec<Reg> = (0..allocatable).rev().map(Reg).collect();
    let mut active: Vec<(Reg, usize)> = Vec::new(); // (vreg, end), sorted by end
    let mut next_slot = 0i64;
    for (vreg, start, end) in intervals {
        // Expire finished intervals.
        active.retain(|&(a, a_end)| {
            if a_end < start {
                if let Some(Loc::Phys(p)) = map.get(&a) {
                    free.push(*p);
                }
                false
            } else {
                true
            }
        });
        if let Some(p) = free.pop() {
            map.insert(vreg, Loc::Phys(p));
            active.push((vreg, end));
            active.sort_by_key(|&(_, e)| e);
        } else if let Some(&(victim, v_end)) = active.last() {
            if v_end > end {
                // Steal the victim's register; spill the victim.
                let Loc::Phys(p) = map[&victim] else {
                    unreachable!()
                };
                map.insert(victim, Loc::Spill(next_slot));
                next_slot += 1;
                map.insert(vreg, Loc::Phys(p));
                active.pop();
                active.push((vreg, end));
                active.sort_by_key(|&(_, e)| e);
            } else {
                map.insert(vreg, Loc::Spill(next_slot));
                next_slot += 1;
            }
        } else {
            map.insert(vreg, Loc::Spill(next_slot));
            next_slot += 1;
        }
    }

    // 3. Rewrite, inserting spill loads/stores; remap labels afterwards.
    let mut out = MProgram::new();
    let mut new_index = vec![0usize; code.insts.len() + 1];
    for (idx, inst) in code.insts.iter().enumerate() {
        new_index[idx] = out.len();
        rewrite(inst, &map, scratch, spill_array, &mut out);
    }
    new_index[code.insts.len()] = out.len();
    for inst in &mut out.insts {
        match inst {
            Inst::Branch { target, .. } => *target = Label(new_index[target.0]),
            Inst::Jump(l) => *l = Label(new_index[l.0]),
            _ => {}
        }
    }

    let spilled = map.values().filter(|l| matches!(l, Loc::Spill(_))).count();
    let physical_used = out.num_regs();
    Ok(Allocated {
        code: out,
        map,
        spill_array,
        physical_used,
        spilled,
    })
}

fn regs_of(inst: &Inst) -> Vec<Reg> {
    fn op(o: &Operand, out: &mut Vec<Reg>) {
        if let Operand::Reg(r) = o {
            out.push(*r);
        }
    }
    let mut out = Vec::new();
    match inst {
        Inst::Load { dst, addr, .. } => {
            out.push(*dst);
            out.extend(addr.base);
        }
        Inst::Store { addr, src, .. } => {
            op(src, &mut out);
            out.extend(addr.base);
        }
        Inst::Move { dst, src } => {
            out.push(*dst);
            op(src, &mut out);
        }
        Inst::Bin { dst, lhs, rhs, .. } => {
            out.push(*dst);
            op(lhs, &mut out);
            op(rhs, &mut out);
        }
        Inst::Branch { lhs, rhs, .. } => {
            op(lhs, &mut out);
            op(rhs, &mut out);
        }
        Inst::Jump(_) | Inst::Halt => {}
    }
    out
}

/// Rewrites one instruction: spilled reads load into scratch first, a
/// spilled destination computes into scratch and stores after.
fn rewrite(
    inst: &Inst,
    map: &BTreeMap<Reg, Loc>,
    scratch: [Reg; 2],
    spill: ArrayId,
    out: &mut MProgram,
) {
    let mut scratch_idx = 0usize;
    let mut read = |r: Reg, out: &mut MProgram| -> Reg {
        match map[&r] {
            Loc::Phys(p) => p,
            Loc::Spill(slot) => {
                let s = scratch[scratch_idx];
                scratch_idx = (scratch_idx + 1) % 2;
                out.push(Inst::Load {
                    dst: s,
                    array: spill,
                    addr: Addr::absolute(slot),
                });
                s
            }
        }
    };
    macro_rules! read_op {
        ($o:expr, $out:expr) => {
            match $o {
                Operand::Reg(r) => Operand::Reg(read(*r, $out)),
                imm => *imm,
            }
        };
    }
    macro_rules! read_addr {
        ($a:expr, $out:expr) => {
            Addr {
                base: $a.base.map(|b| read(b, $out)),
                offset: $a.offset,
            }
        };
    }
    // Writing helper: returns (register to compute into, optional flush).
    let write = |r: Reg| -> (Reg, Option<i64>) {
        match map[&r] {
            Loc::Phys(p) => (p, None),
            Loc::Spill(slot) => (scratch[0], Some(slot)),
        }
    };

    match inst {
        Inst::Load { dst, array, addr } => {
            let addr = read_addr!(addr, out);
            let (d, flush) = write(*dst);
            out.push(Inst::Load {
                dst: d,
                array: *array,
                addr,
            });
            if let Some(slot) = flush {
                out.push(Inst::Store {
                    array: spill,
                    addr: Addr::absolute(slot),
                    src: Operand::Reg(d),
                });
            }
        }
        Inst::Store { array, addr, src } => {
            let src = read_op!(src, out);
            let addr = read_addr!(addr, out);
            out.push(Inst::Store {
                array: *array,
                addr,
                src,
            });
        }
        Inst::Move { dst, src } => {
            let src = read_op!(src, out);
            let (d, flush) = write(*dst);
            out.push(Inst::Move { dst: d, src });
            if let Some(slot) = flush {
                out.push(Inst::Store {
                    array: spill,
                    addr: Addr::absolute(slot),
                    src: Operand::Reg(d),
                });
            }
        }
        Inst::Bin { op, dst, lhs, rhs } => {
            let lhs = read_op!(lhs, out);
            let rhs = read_op!(rhs, out);
            let (d, flush) = write(*dst);
            out.push(Inst::Bin {
                op: *op,
                dst: d,
                lhs,
                rhs,
            });
            if let Some(slot) = flush {
                out.push(Inst::Store {
                    array: spill,
                    addr: Addr::absolute(slot),
                    src: Operand::Reg(d),
                });
            }
        }
        Inst::Branch {
            op,
            lhs,
            rhs,
            target,
        } => {
            let lhs = read_op!(lhs, out);
            let rhs = read_op!(rhs, out);
            out.push(Inst::Branch {
                op: *op,
                lhs,
                rhs,
                target: *target,
            });
        }
        Inst::Jump(l) => {
            out.push(Inst::Jump(*l));
        }
        Inst::Halt => {
            out.push(Inst::Halt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use arrayflow_ir::parse_program;

    fn spill_id(p: &arrayflow_ir::Program) -> ArrayId {
        ArrayId(p.symbols.num_arrays() as u32 + 100)
    }

    fn run_both(src: &str, k: u32) -> (Machine, Machine, Allocated) {
        let p = parse_program(src).unwrap();
        let c = compile(&p).unwrap();
        let pinned: Vec<Reg> = c.scalar_regs.values().copied().collect();
        let alloc = assign_physical(&c.code, k, spill_id(&p), &pinned).unwrap();

        let mut m1 = Machine::new();
        let mut m2 = Machine::new();
        for a in p.symbols.array_ids() {
            for i in -16..300 {
                m1.set_mem(a, i, i * 5 + 2);
                m2.set_mem(a, i, i * 5 + 2);
            }
        }
        for (v, &r) in &c.scalar_regs {
            let value = (v.0 as i64 % 5) + 1;
            m1.set_reg(r, value);
            alloc.seed(&mut m2, r, value);
        }
        m1.run(&c.code).unwrap();
        m2.run(&alloc.code).unwrap();
        // Compare array state excluding the spill segment.
        for a in p.symbols.array_ids() {
            assert_eq!(
                m1.memory().get(&a),
                m2.memory().get(&a),
                "array {} differs under k={k}\n{}",
                p.array_name(a),
                alloc.code.listing(&p.symbols_with_spill())
            );
        }
        (m1, m2, alloc)
    }

    trait SymbolsWithSpill {
        fn symbols_with_spill(&self) -> arrayflow_ir::SymbolTable;
    }
    impl SymbolsWithSpill for arrayflow_ir::Program {
        fn symbols_with_spill(&self) -> arrayflow_ir::SymbolTable {
            let mut t = self.symbols.clone();
            for k in 0..=100 {
                t.array(&format!("__pad{k}"));
            }
            t
        }
    }

    #[test]
    fn generous_budget_spills_nothing() {
        let (_, _, alloc) = run_both("do i = 1, 50 A[i+1] := A[i] * 2 + B[i]; end", 16);
        assert_eq!(alloc.spilled, 0);
        assert!(alloc.physical_used <= 16);
    }

    #[test]
    fn tight_budget_spills_but_stays_correct() {
        let src = "do i = 1, 50
           t := A[i] + B[i];
           u := A[i+1] * B[i+1];
           v := t + u;
           C[i] := v + t * u;
         end";
        let (m1, m2, alloc) = run_both(src, 4);
        assert!(alloc.spilled > 0, "4 registers must force spills");
        assert!(alloc.physical_used <= 4);
        assert!(
            m2.stats.mem_ops() > m1.stats.mem_ops(),
            "spill traffic is visible: {} vs {}",
            m2.stats.mem_ops(),
            m1.stats.mem_ops()
        );
    }

    #[test]
    fn register_count_is_respected_across_budgets() {
        let src = "do i = 1, 30
           if A[i] > 10 then B[i] := A[i] - C[i]; else B[i] := A[i] + C[i]; end
           D[i] := B[i] * A[i+1];
         end";
        for k in [3u32, 4, 6, 8, 12] {
            let (_, _, alloc) = run_both(src, k);
            assert!(
                alloc.physical_used <= k,
                "k={k}: used {}",
                alloc.physical_used
            );
        }
    }

    #[test]
    fn too_few_registers_is_an_error() {
        let p = parse_program("do i = 1, 5 A[i] := 0; end").unwrap();
        let c = compile(&p).unwrap();
        assert_eq!(
            assign_physical(&c.code, 2, spill_id(&p), &[]).unwrap_err(),
            RegAllocError::TooFewRegisters
        );
    }

    #[test]
    fn pipelined_code_survives_allocation() {
        use crate::codegen::{compile_with, PipeRange, PipelinePlan, ReusePoint};
        use arrayflow_ir::stmt::StmtId;
        use arrayflow_ir::{ArrayRef, Expr};

        let p = parse_program("do i = 1, 200 A[i+2] := A[i] + x; end").unwrap();
        let a = p.symbols.lookup_array("A").unwrap();
        let iv = p.sole_loop().unwrap().iv;
        let def_ref = ArrayRef::new(a, Expr::add(Expr::Scalar(iv), Expr::Const(2)));
        let plan = PipelinePlan {
            iv: Some(iv),
            ranges: vec![PipeRange {
                array: a,
                gen_stmt: StmtId(0),
                gen_ref: def_ref,
                gen_is_def: true,
                gen_a: 1,
                gen_b: 2,
                depth: 3,
                reuse_points: vec![ReusePoint {
                    stmt: StmtId(0),
                    aref: ArrayRef::new(a, Expr::Scalar(iv)),
                    distance: 2,
                }],
            }],
        };
        let c = compile_with(&p, &plan).unwrap();
        let pinned: Vec<Reg> = c.scalar_regs.values().copied().collect();
        let alloc = assign_physical(&c.code, 8, spill_id(&p), &pinned).unwrap();
        assert_eq!(alloc.spilled, 0, "8 registers suffice for the pipeline");

        let x = p.symbols.lookup_var("x").unwrap();
        let mut m1 = Machine::new();
        let mut m2 = Machine::new();
        for m in [&mut m1, &mut m2] {
            m.set_mem(a, 1, 7);
            m.set_mem(a, 2, 9);
        }
        m1.set_reg(c.scalar_regs[&x], 3);
        alloc.seed(&mut m2, c.scalar_regs[&x], 3);
        m1.run(&c.code).unwrap();
        m2.run(&alloc.code).unwrap();
        assert_eq!(m1.memory().get(&a), m2.memory().get(&a));
        assert_eq!(m1.stats.loads, m2.stats.loads, "no spill loads added");
    }
}
