#![warn(missing_docs)]
//! A three-address virtual machine, code generator and cost simulator.
//!
//! The paper evaluates its optimizations on sequential / fine-grained
//! parallel machines where loads and stores dominate loop cost. This crate
//! provides an executable stand-in: loop IR compiles to a flat
//! register-machine program ([`codegen::compile`]), optionally applying a
//! register-pipelining plan ([`PipelinePlan`], §4.1.4), and the simulator
//! ([`Machine`]) executes it while counting loads, stores, moves, ALU
//! operations and branches under a configurable [`CostModel`] (the paper's
//! `Cm` parameter). Memory-image comparisons against the IR interpreter
//! validate that generated and optimized code preserve semantics.

pub mod codegen;
pub mod inst;
pub mod regalloc;
pub mod sim;

pub use codegen::{
    compile, compile_with, compile_with_style, CodegenError, Compiled, PipeRange, PipelinePlan,
    PipelineStyle, ReusePoint,
};
pub use inst::{Addr, Inst, Label, MProgram, Operand, Reg};
pub use regalloc::{assign_physical, Allocated, Loc, RegAllocError};
pub use sim::{CostModel, Machine, SimError, SimStats};
