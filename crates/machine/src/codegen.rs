//! Code generation from loop IR to the virtual machine.
//!
//! Two modes:
//!
//! * **conventional** — every array use becomes a `load`, every array
//!   definition a `store` (Fig. 5 (ii) of the paper);
//! * **pipelined** — a [`PipelinePlan`] (produced by `arrayflow-opt` from
//!   δ-available information) assigns register pipelines to live ranges:
//!   the first `δ₀` iterations are peeled and run conventionally (the
//!   paper's start-up iterations, §3.2), the stages are then initialized
//!   with loads `r_j ← X[f(i − j)]`, reuse points read pipeline stages
//!   instead of memory, and the pipeline progresses by register moves at
//!   the end of each iteration (Fig. 5 (iii) / §4.1.4).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use arrayflow_ir::stmt::StmtId;
use arrayflow_ir::{
    ArrayId, ArrayRef, BinOp, Block, Cond, Expr, LValue, Loop, Program, Stmt, VarId,
};

use crate::inst::{Addr, Inst, Label, MProgram, Operand, Reg};

/// One reuse point served by a pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReusePoint {
    /// The assignment containing the use.
    pub stmt: StmtId,
    /// The textual reference at that point.
    pub aref: ArrayRef,
    /// Iteration distance to the generator (= the stage index read).
    pub distance: u64,
}

/// One planned register pipeline (a live range of a subscripted variable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeRange {
    /// Array being pipelined.
    pub array: ArrayId,
    /// Assignment containing the generating reference.
    pub gen_stmt: StmtId,
    /// The generating reference as written.
    pub gen_ref: ArrayRef,
    /// True if the generator is a definition (value enters the pipeline
    /// from the computed result); false for a use (one load per iteration
    /// fills stage 0).
    pub gen_is_def: bool,
    /// Integer affine subscript `a·i + b` of the generator (needed for the
    /// preamble initialization loads).
    pub gen_a: i64,
    /// See [`PipeRange::gen_a`].
    pub gen_b: i64,
    /// Pipeline depth: `δ₀ + 1` stages (§4.1.2).
    pub depth: usize,
    /// The uses served from pipeline stages.
    pub reuse_points: Vec<ReusePoint>,
}

/// A register pipelining plan for one loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelinePlan {
    /// Induction variable of the loop the plan applies to.
    pub iv: Option<VarId>,
    /// Planned pipelines.
    pub ranges: Vec<PipeRange>,
}

/// Code generation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// A multi-dimensional array has an unknown extent, so addresses cannot
    /// be linearized.
    UnknownExtent(ArrayId),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UnknownExtent(a) => {
                write!(
                    f,
                    "array {a} has unknown extents; cannot linearize addresses"
                )
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// The result of compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The machine program.
    pub code: MProgram,
    /// Register holding each scalar variable (seed these before running and
    /// read them back after).
    pub scalar_regs: BTreeMap<VarId, Reg>,
    /// Registers used by pipeline stages, per planned range (in plan
    /// order): `stages[k][j]` is stage `j` of range `k`.
    pub stages: Vec<Vec<Reg>>,
}

/// How pipeline stages progress between iterations (§4.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineStyle {
    /// `depth − 1` register-to-register moves at the end of each iteration
    /// (Fig. 5 (iii)); the software fallback the paper costs against the
    /// Cydra 5's hardware iteration-control pointer.
    #[default]
    Moves,
    /// Unroll the steady-state body `lcm(depths)` times and rotate the
    /// stage-to-register assignment per copy (modulo renaming) — "physically
    /// moving values among the stages is not necessary if the loop is
    /// unrolled depth(l) times" (§4.1.4). Falls back to [`Self::Moves`]
    /// when the unroll factor would exceed 16.
    Unrolled,
}

/// Compiles a whole program conventionally.
///
/// # Errors
///
/// See [`CodegenError`].
pub fn compile(program: &Program) -> Result<Compiled, CodegenError> {
    compile_with(program, &PipelinePlan::default())
}

/// Compiles a program applying a register pipelining plan (move-based
/// progression) to the loop the plan names.
///
/// # Errors
///
/// See [`CodegenError`].
pub fn compile_with(program: &Program, plan: &PipelinePlan) -> Result<Compiled, CodegenError> {
    compile_with_style(program, plan, PipelineStyle::Moves)
}

/// Compiles with an explicit pipeline progression style.
///
/// # Errors
///
/// See [`CodegenError`].
pub fn compile_with_style(
    program: &Program,
    plan: &PipelinePlan,
    style: PipelineStyle,
) -> Result<Compiled, CodegenError> {
    let mut cg = Cg {
        code: MProgram::new(),
        scalar_regs: BTreeMap::new(),
        next_reg: 0,
        program,
        plan,
        plan_active: true,
        style,
        rotation: 0,
        stages: Vec::new(),
        reuse_index: HashMap::new(),
    };
    // Pre-assign a register to every scalar so callers can seed them.
    for v in program.symbols.var_ids() {
        cg.scalar_reg(v);
    }
    // Allocate pipeline stages and index reuse points.
    for (k, range) in plan.ranges.iter().enumerate() {
        let stages: Vec<Reg> = (0..range.depth).map(|_| cg.fresh()).collect();
        for rp in &range.reuse_points {
            cg.reuse_index
                .insert((rp.stmt, rp.aref.clone()), (k, rp.distance as usize));
        }
        cg.stages.push(stages);
    }
    cg.block(&program.body)?;
    cg.code.push(Inst::Halt);
    Ok(Compiled {
        code: cg.code,
        scalar_regs: cg.scalar_regs,
        stages: cg.stages,
    })
}

struct Cg<'a> {
    code: MProgram,
    scalar_regs: BTreeMap<VarId, Reg>,
    next_reg: u32,
    program: &'a Program,
    plan: &'a PipelinePlan,
    /// Cleared while compiling the peeled prologue so stage reads/writes
    /// fall back to plain loads and stores.
    plan_active: bool,
    /// Progression style for planned loops.
    style: PipelineStyle,
    /// Current copy index within an unrolled steady-state body: logical
    /// stage `j` of range `k` lives in physical register
    /// `stages[k][(j + depth − rotation mod depth) mod depth]`.
    rotation: usize,
    stages: Vec<Vec<Reg>>,
    /// (stmt, textual ref) → (range index, stage index).
    reuse_index: HashMap<(StmtId, ArrayRef), (usize, usize)>,
}

impl Cg<'_> {
    fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Physical register of logical stage `j` of range `k` under the
    /// current modulo-renaming rotation.
    fn stage_reg(&self, k: usize, j: usize) -> Reg {
        let d = self.stages[k].len();
        let rot = self.rotation % d;
        self.stages[k][(j + d - rot) % d]
    }

    fn scalar_reg(&mut self, v: VarId) -> Reg {
        if let Some(&r) = self.scalar_regs.get(&v) {
            return r;
        }
        let r = self.fresh();
        self.scalar_regs.insert(v, r);
        r
    }

    fn block(&mut self, b: &Block) -> Result<(), CodegenError> {
        for stmt in b {
            self.stmt(stmt)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CodegenError> {
        match stmt {
            Stmt::Assign(a) => {
                let value = self.expr(&a.rhs, Some(a.id))?;
                match &a.lhs {
                    LValue::Scalar(v) => {
                        let dst = self.scalar_reg(*v);
                        self.code.push(Inst::Move { dst, src: value });
                    }
                    LValue::Elem(r) => {
                        let addr = self.address(r)?;
                        self.code.push(Inst::Store {
                            array: r.array,
                            addr,
                            src: value,
                        });
                        // A generating definition also feeds stage 0.
                        if self.plan_active {
                            if let Some(k) = self.generator_range(a.id, r, true) {
                                let dst = self.stage_reg(k, 0);
                                self.code.push(Inst::Move { dst, src: value });
                            }
                        }
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => self.if_stmt(cond, then_blk, else_blk),
            Stmt::Do(l) => self.do_loop(l),
        }
    }

    fn if_stmt(
        &mut self,
        cond: &Cond,
        then_blk: &Block,
        else_blk: &Block,
    ) -> Result<(), CodegenError> {
        let lhs = self.expr(&cond.lhs, None)?;
        let rhs = self.expr(&cond.rhs, None)?;
        // Branch to the then-block when the condition holds; fall through to
        // the else-block otherwise.
        let br = self.code.push(Inst::Branch {
            op: cond.op,
            lhs,
            rhs,
            target: Label(0), // patched below
        });
        self.block(else_blk)?;
        let jmp = self.code.push(Inst::Jump(Label(0))); // patched below
        let then_start = self.code.here();
        if let Inst::Branch { target, .. } = &mut self.code.insts[br] {
            *target = then_start;
        }
        self.block(then_blk)?;
        let join = self.code.here();
        if let Inst::Jump(l) = &mut self.code.insts[jmp] {
            *l = join;
        }
        Ok(())
    }

    fn do_loop(&mut self, l: &Loop) -> Result<(), CodegenError> {
        let this_is_planned =
            self.plan_active && self.plan.iv == Some(l.iv) && !self.plan.ranges.is_empty();
        let iv = self.scalar_reg(l.iv);
        let lower = self.expr(&l.lower.to_expr(), None)?;
        let upper_val = self.expr(&l.upper.to_expr(), None)?;
        let upper = match upper_val {
            Operand::Imm(_) => upper_val,
            Operand::Reg(_) => {
                // Copy into a dedicated register: the temp pool may be
                // reused inside the body.
                let r = self.fresh();
                self.code.push(Inst::Move {
                    dst: r,
                    src: upper_val,
                });
                Operand::Reg(r)
            }
        };
        self.code.push(Inst::Move {
            dst: iv,
            src: lower,
        });

        if this_is_planned {
            return self.pipelined_loop(l, iv, upper);
        }

        // Guard: skip the loop entirely when the trip count is zero.
        let guard = self.code.push(Inst::Branch {
            op: if l.step > 0 {
                arrayflow_ir::RelOp::Gt
            } else {
                arrayflow_ir::RelOp::Lt
            },
            lhs: Operand::Reg(iv),
            rhs: upper,
            target: Label(0), // patched to the exit
        });
        let top = self.code.here();
        self.block(&l.body)?;
        self.code.push(Inst::Bin {
            op: BinOp::Add,
            dst: iv,
            lhs: Operand::Reg(iv),
            rhs: Operand::Imm(l.step),
        });
        self.code.push(Inst::Branch {
            op: if l.step > 0 {
                arrayflow_ir::RelOp::Le
            } else {
                arrayflow_ir::RelOp::Ge
            },
            lhs: Operand::Reg(iv),
            rhs: upper,
            target: top,
        });
        let exit = self.code.here();
        if let Inst::Branch { target, .. } = &mut self.code.insts[guard] {
            *target = exit;
        }
        Ok(())
    }

    /// Emits a pipelined loop: the analysis facts hold only after `δ₀`
    /// start-up iterations (paper §3.2), so the first
    /// `P = max(depth) − 1` iterations run conventionally (peeled prologue)
    /// and the pipeline stages are then initialized from memory —
    /// must-availability guarantees the elements have not been overwritten
    /// at that point — before entering the steady-state body.
    fn pipelined_loop(&mut self, l: &Loop, iv: Reg, upper: Operand) -> Result<(), CodegenError> {
        let p_max = self
            .plan
            .ranges
            .iter()
            .map(|r| r.depth as i64 - 1)
            .max()
            .unwrap_or(0);
        let mut to_exit: Vec<usize> = Vec::new();

        // Prologue: while iv ≤ upper and iv ≤ P, run the body as-is.
        let check_ub = self.code.here();
        to_exit.push(self.code.push(Inst::Branch {
            op: arrayflow_ir::RelOp::Gt,
            lhs: Operand::Reg(iv),
            rhs: upper,
            target: Label(0), // → exit
        }));
        let to_setup = self.code.push(Inst::Branch {
            op: arrayflow_ir::RelOp::Gt,
            lhs: Operand::Reg(iv),
            rhs: Operand::Imm(p_max),
            target: Label(0), // → setup
        });
        self.plan_active = false;
        self.block(&l.body)?;
        self.plan_active = true;
        self.code.push(Inst::Bin {
            op: BinOp::Add,
            dst: iv,
            lhs: Operand::Reg(iv),
            rhs: Operand::Imm(1),
        });
        self.code.push(Inst::Jump(check_ub));

        // Setup: stage j ← X[f(iv − j)] (iv = P + 1 here; iv ≤ upper holds).
        let setup = self.code.here();
        if let Inst::Branch { target, .. } = &mut self.code.insts[to_setup] {
            *target = setup;
        }
        for (k, range) in self.plan.ranges.clone().iter().enumerate() {
            for j in 1..range.depth {
                let offset = range.gen_b - range.gen_a * j as i64;
                let addr = match range.gen_a {
                    0 => Addr::absolute(range.gen_b),
                    1 => Addr::indexed(iv, offset),
                    a => {
                        let t = self.fresh();
                        self.code.push(Inst::Bin {
                            op: BinOp::Mul,
                            dst: t,
                            lhs: Operand::Imm(a),
                            rhs: Operand::Reg(iv),
                        });
                        Addr::indexed(t, offset)
                    }
                };
                let dst = self.stages[k][j];
                self.code.push(Inst::Load {
                    dst,
                    array: range.array,
                    addr,
                });
            }
        }

        // Steady state: move-based progression, or modulo-renamed unrolled
        // copies with a conventional tail.
        let unroll = match self.style {
            PipelineStyle::Moves => 1,
            PipelineStyle::Unrolled => {
                let u = self
                    .plan
                    .ranges
                    .iter()
                    .map(|r| r.depth as u64)
                    .fold(1u64, lcm);
                if u > 16 {
                    1 // register pressure / code size guard — fall back
                } else {
                    u as usize
                }
            }
        };
        if unroll <= 1 {
            let top = self.code.here();
            self.block(&l.body)?;
            self.pipeline_progression();
            self.code.push(Inst::Bin {
                op: BinOp::Add,
                dst: iv,
                lhs: Operand::Reg(iv),
                rhs: Operand::Imm(1),
            });
            self.code.push(Inst::Branch {
                op: arrayflow_ir::RelOp::Le,
                lhs: Operand::Reg(iv),
                rhs: upper,
                target: top,
            });
        } else {
            // while iv + (U − 1) ≤ upper: U copies, no moves.
            let last = self.fresh();
            let top_u = self.code.here();
            self.code.push(Inst::Bin {
                op: BinOp::Add,
                dst: last,
                lhs: Operand::Reg(iv),
                rhs: Operand::Imm(unroll as i64 - 1),
            });
            let to_tail = self.code.push(Inst::Branch {
                op: arrayflow_ir::RelOp::Gt,
                lhs: Operand::Reg(last),
                rhs: upper,
                target: Label(0), // → tail
            });
            for c in 0..unroll {
                self.rotation = c;
                self.block(&l.body)?;
                self.code.push(Inst::Bin {
                    op: BinOp::Add,
                    dst: iv,
                    lhs: Operand::Reg(iv),
                    rhs: Operand::Imm(1),
                });
            }
            self.rotation = 0;
            self.code.push(Inst::Jump(top_u));
            // Tail: remaining iterations run conventionally (the stages go
            // stale, but nothing reads them afterwards).
            let tail = self.code.here();
            if let Inst::Branch { target, .. } = &mut self.code.insts[to_tail] {
                *target = tail;
            }
            let tail_guard = self.code.push(Inst::Branch {
                op: arrayflow_ir::RelOp::Gt,
                lhs: Operand::Reg(iv),
                rhs: upper,
                target: Label(0), // → exit
            });
            to_exit.push(tail_guard);
            let tail_top = self.code.here();
            self.plan_active = false;
            self.block(&l.body)?;
            self.plan_active = true;
            self.code.push(Inst::Bin {
                op: BinOp::Add,
                dst: iv,
                lhs: Operand::Reg(iv),
                rhs: Operand::Imm(1),
            });
            self.code.push(Inst::Branch {
                op: arrayflow_ir::RelOp::Le,
                lhs: Operand::Reg(iv),
                rhs: upper,
                target: tail_top,
            });
        }
        let exit = self.code.here();
        for idx in to_exit {
            if let Inst::Branch { target, .. } = &mut self.code.insts[idx] {
                *target = exit;
            }
        }
        Ok(())
    }

    /// End-of-body progression: `r_j ← r_{j−1}`, deepest stage first.
    fn pipeline_progression(&mut self) {
        for (k, range) in self.plan.ranges.iter().enumerate() {
            for j in (1..range.depth).rev() {
                let dst = self.stages[k][j];
                let src = self.stages[k][j - 1];
                self.code.push(Inst::Move {
                    dst,
                    src: Operand::Reg(src),
                });
            }
        }
    }

    /// Is `(stmt, aref)` the generating reference of a planned range?
    fn generator_range(&self, stmt: StmtId, aref: &ArrayRef, is_def: bool) -> Option<usize> {
        self.plan
            .ranges
            .iter()
            .position(|r| r.gen_stmt == stmt && r.gen_is_def == is_def && &r.gen_ref == aref)
    }

    fn expr(&mut self, e: &Expr, stmt: Option<StmtId>) -> Result<Operand, CodegenError> {
        match e {
            Expr::Const(c) => Ok(Operand::Imm(*c)),
            Expr::Scalar(v) => Ok(Operand::Reg(self.scalar_reg(*v))),
            Expr::Elem(r) => {
                if let Some(stmt) = stmt.filter(|_| self.plan_active) {
                    let reuse = self.reuse_index.get(&(stmt, r.clone())).copied();
                    let gen = self.generator_range(stmt, r, false);
                    match (reuse, gen) {
                        // Reuse point → read the pipeline stage instead of
                        // memory; if the same site also *generates* another
                        // range, forward the value into that range's stage 0
                        // (no load needed — the serving stage has it).
                        (Some((k, stage)), g) => {
                            let src = self.stage_reg(k, stage);
                            if let Some(gk) = g {
                                let dst = self.stage_reg(gk, 0);
                                if dst != src {
                                    self.code.push(Inst::Move {
                                        dst,
                                        src: Operand::Reg(src),
                                    });
                                }
                            }
                            return Ok(Operand::Reg(src));
                        }
                        // A use-kind generator loads once into stage 0.
                        (None, Some(k)) => {
                            let addr = self.address(r)?;
                            let dst = self.stage_reg(k, 0);
                            self.code.push(Inst::Load {
                                dst,
                                array: r.array,
                                addr,
                            });
                            return Ok(Operand::Reg(dst));
                        }
                        (None, None) => {}
                    }
                }
                let addr = self.address(r)?;
                let dst = self.fresh();
                self.code.push(Inst::Load {
                    dst,
                    array: r.array,
                    addr,
                });
                Ok(Operand::Reg(dst))
            }
            Expr::Bin(op, l, r) => {
                let lhs = self.expr(l, stmt)?;
                let rhs = self.expr(r, stmt)?;
                if let (Operand::Imm(a), Operand::Imm(b)) = (lhs, rhs) {
                    // Constant folding keeps address math honest.
                    if let Some(v) = fold(*op, a, b) {
                        return Ok(Operand::Imm(v));
                    }
                }
                let dst = self.fresh();
                self.code.push(Inst::Bin {
                    op: *op,
                    dst,
                    lhs,
                    rhs,
                });
                Ok(Operand::Reg(dst))
            }
        }
    }

    /// Computes the address of an array element, linearizing
    /// multi-dimensional references row-major with known extents.
    fn address(&mut self, r: &ArrayRef) -> Result<Addr, CodegenError> {
        let linear: Expr = if r.subs.len() == 1 {
            r.subs[0].clone()
        } else {
            let info = self.program.symbols.array_info(r.array);
            let mut acc = r.subs[0].clone();
            for (dim, sub) in r.subs.iter().enumerate().skip(1) {
                let extent = info.extents[dim].ok_or(CodegenError::UnknownExtent(r.array))?;
                acc = Expr::add(Expr::mul(acc, Expr::Const(extent)), sub.clone());
            }
            acc
        };
        // Fast path: iv ± const or const.
        match &linear {
            Expr::Const(c) => return Ok(Addr::absolute(*c)),
            Expr::Scalar(v) => return Ok(Addr::indexed(self.scalar_reg(*v), 0)),
            Expr::Bin(BinOp::Add, l, rr) => {
                if let (Expr::Scalar(v), Expr::Const(c)) = (l.as_ref(), rr.as_ref()) {
                    return Ok(Addr::indexed(self.scalar_reg(*v), *c));
                }
            }
            Expr::Bin(BinOp::Sub, l, rr) => {
                if let (Expr::Scalar(v), Expr::Const(c)) = (l.as_ref(), rr.as_ref()) {
                    return Ok(Addr::indexed(self.scalar_reg(*v), -c));
                }
            }
            _ => {}
        }
        let op = self.expr(&linear, None)?;
        match op {
            Operand::Imm(c) => Ok(Addr::absolute(c)),
            Operand::Reg(r) => Ok(Addr::indexed(r, 0)),
        }
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    a / gcd(a, b) * b
}

fn fold(op: BinOp, a: i64, b: i64) -> Option<i64> {
    match op {
        BinOp::Add => a.checked_add(b),
        BinOp::Sub => a.checked_sub(b),
        BinOp::Mul => a.checked_mul(b),
        BinOp::Div => (b != 0).then(|| a / b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Machine;
    use arrayflow_ir::parse_program;

    /// Compiles and runs a program, seeding scalars/arrays, and returns the
    /// machine for inspection.
    fn run(
        src: &str,
        seed: impl FnOnce(&Program, &mut Machine, &Compiled),
    ) -> (Program, Compiled, Machine) {
        let p = parse_program(src).unwrap();
        let c = compile(&p).unwrap();
        let mut m = Machine::new();
        seed(&p, &mut m, &c);
        m.run(&c.code).unwrap();
        (p, c, m)
    }

    #[test]
    fn machine_matches_interpreter_on_stencil() {
        let src = "do i = 1, 10 A[i+2] := A[i] + x; end";
        let p = parse_program(src).unwrap();
        let x = p.symbols.lookup_var("x").unwrap();
        let a = p.symbols.lookup_array("A").unwrap();

        // Reference semantics.
        let env = arrayflow_ir::interp::run_with(&p, |e| {
            e.set_scalar(x, 5);
            e.set_elem(a, vec![1], 100);
            e.set_elem(a, vec![2], 200);
        })
        .unwrap();

        let c = compile(&p).unwrap();
        let mut m = Machine::new();
        m.set_reg(c.scalar_regs[&x], 5);
        m.set_mem(a, 1, 100);
        m.set_mem(a, 2, 200);
        m.run(&c.code).unwrap();

        for idx in 1..=12 {
            assert_eq!(m.mem(a, idx), env.elem(a, &[idx]), "mismatch at A[{idx}]");
        }
        // Conventional code: one load and one store per iteration.
        assert_eq!(m.stats.loads, 10);
        assert_eq!(m.stats.stores, 10);
    }

    #[test]
    fn conditionals_choose_branches() {
        let (p, _, m) = run(
            "do i = 1, 4
               if i < 3 then A[i] := 1; else A[i] := 2; end
             end",
            |_, _, _| {},
        );
        let a = p.symbols.lookup_array("A").unwrap();
        assert_eq!(m.mem(a, 1), 1);
        assert_eq!(m.mem(a, 2), 1);
        assert_eq!(m.mem(a, 3), 2);
        assert_eq!(m.mem(a, 4), 2);
    }

    #[test]
    fn zero_trip_loop_is_skipped() {
        let (p, _, m) = run("do i = 5, 1 A[i] := 9; end", |_, _, _| {});
        let a = p.symbols.lookup_array("A").unwrap();
        for i in 1..=5 {
            assert_eq!(m.mem(a, i), 0);
        }
        assert_eq!(m.stats.stores, 0);
    }

    #[test]
    fn nested_loops_and_multidim_with_known_extents() {
        let src = "do j = 1, 3 do i = 1, 3 X[i, j] := i * 10 + j; end end";
        let mut p = parse_program(src).unwrap();
        // Give X known extents 3×3 by rebuilding the symbol table entry.
        // (The parser leaves extents unknown; redeclare through a fresh
        // program for the test.)
        let x = p.symbols.lookup_array("X").unwrap();
        {
            // Extents are private to SymbolTable; emulate a declared array
            // by patching through array_with on a fresh table is overkill —
            // instead verify the error path first:
            let err = compile(&p).unwrap_err();
            assert_eq!(err, CodegenError::UnknownExtent(x));
        }
        // Build the same program with the builder, declaring extents.
        let mut symbols = arrayflow_ir::SymbolTable::new();
        let j = symbols.var("j");
        let i = symbols.var("i");
        let x2 = symbols.array_with("X", 2, vec![Some(3), Some(3)]);
        let body = vec![Stmt::Do(Loop {
            iv: j,
            lower: 1.into(),
            upper: 3.into(),
            step: 1,
            body: vec![Stmt::Do(Loop {
                iv: i,
                lower: 1.into(),
                upper: 3.into(),
                step: 1,
                body: vec![Stmt::Assign(arrayflow_ir::stmt::Assign::new(
                    LValue::Elem(ArrayRef::multi(x2, vec![Expr::Scalar(i), Expr::Scalar(j)])),
                    Expr::add(Expr::mul(Expr::Scalar(i), Expr::Const(10)), Expr::Scalar(j)),
                ))],
            })],
        })];
        p = Program { symbols, body };
        p.renumber();
        let c = compile(&p).unwrap();
        let mut m = Machine::new();
        m.run(&c.code).unwrap();
        // Row-major: X[i, j] at address i*3 + j.
        assert_eq!(m.mem(x2, 2 * 3 + 3), 23);
        assert_eq!(m.stats.stores, 9);
    }

    #[test]
    fn scalar_results_are_readable() {
        let (p, c, m) = run("do i = 1, 5 s := s + i; end", |_, _, _| {});
        let s = p.symbols.lookup_var("s").unwrap();
        assert_eq!(m.reg(c.scalar_regs[&s]), 15);
    }

    #[test]
    fn pipelined_fig5_eliminates_loads() {
        // Fig. 5: do i = 1, 1000 { A[i+2] := A[i] + x } with a 3-stage
        // pipeline — zero loads inside the loop.
        let src = "do i = 1, 1000 A[i+2] := A[i] + x; end";
        let p = parse_program(src).unwrap();
        let a = p.symbols.lookup_array("A").unwrap();
        let iv = p.sole_loop().unwrap().iv;
        let def_stmt = StmtId(0);
        let def_ref = match &p.sole_loop().unwrap().body[0] {
            Stmt::Assign(asn) => match &asn.lhs {
                LValue::Elem(r) => r.clone(),
                _ => panic!(),
            },
            _ => panic!(),
        };
        let use_ref = ArrayRef::new(a, Expr::Scalar(iv));
        let plan = PipelinePlan {
            iv: Some(iv),
            ranges: vec![PipeRange {
                array: a,
                gen_stmt: def_stmt,
                gen_ref: def_ref,
                gen_is_def: true,
                gen_a: 1,
                gen_b: 2,
                depth: 3,
                reuse_points: vec![ReusePoint {
                    stmt: def_stmt,
                    aref: use_ref,
                    distance: 2,
                }],
            }],
        };

        let x = p.symbols.lookup_var("x").unwrap();
        let seed = |m: &mut Machine, c: &Compiled| {
            m.set_reg(c.scalar_regs[&x], 7);
            m.set_mem(a, 1, 10);
            m.set_mem(a, 2, 20);
            m.set_mem(a, -1, 55); // preamble reads A[f(1-2)] = A[1], A[f(0)] = A[2]… and nothing else
        };

        let conv = compile(&p).unwrap();
        let mut m1 = Machine::new();
        seed(&mut m1, &conv);
        m1.run(&conv.code).unwrap();

        let pipe = compile_with(&p, &plan).unwrap();
        let mut m2 = Machine::new();
        seed(&mut m2, &pipe);
        m2.run(&pipe.code).unwrap();

        assert_eq!(m1.memory(), m2.memory(), "pipelining must preserve memory");
        assert_eq!(m1.stats.loads, 1000);
        // Two peeled start-up iterations (one load each) plus the two
        // stage-initialization loads; zero loads in the 998 steady-state
        // iterations.
        assert_eq!(m2.stats.loads, 4, "start-up + stage init loads only");
        assert_eq!(m2.stats.stores, 1000, "stores are untouched");
        // The pipeline progression costs 2 moves per iteration.
        assert!(m2.stats.moves >= 2000);
    }
}

#[cfg(test)]
mod unrolled_tests {
    use super::*;
    use crate::sim::Machine;
    use arrayflow_ir::parse_program;

    /// Fig. 5 with the unrolled progression: same memory, (almost) no
    /// pipeline moves in steady state.
    #[test]
    fn unrolled_pipeline_matches_moves_and_drops_moves() {
        let src = "do i = 1, 1000 A[i+2] := A[i] + x; end";
        let p = parse_program(src).unwrap();
        let a = p.symbols.lookup_array("A").unwrap();
        let x = p.symbols.lookup_var("x").unwrap();
        let iv = p.sole_loop().unwrap().iv;
        let def_ref = match &p.sole_loop().unwrap().body[0] {
            Stmt::Assign(asn) => match &asn.lhs {
                LValue::Elem(r) => r.clone(),
                _ => panic!(),
            },
            _ => panic!(),
        };
        let plan = PipelinePlan {
            iv: Some(iv),
            ranges: vec![PipeRange {
                array: a,
                gen_stmt: StmtId(0),
                gen_ref: def_ref,
                gen_is_def: true,
                gen_a: 1,
                gen_b: 2,
                depth: 3,
                reuse_points: vec![ReusePoint {
                    stmt: StmtId(0),
                    aref: ArrayRef::new(a, Expr::Scalar(iv)),
                    distance: 2,
                }],
            }],
        };
        let run = |style: PipelineStyle| {
            let c = compile_with_style(&p, &plan, style).unwrap();
            let mut m = Machine::new();
            m.set_reg(c.scalar_regs[&x], 7);
            m.set_mem(a, 1, 10);
            m.set_mem(a, 2, 20);
            m.run(&c.code).unwrap();
            m
        };
        let conv = {
            let c = compile(&p).unwrap();
            let mut m = Machine::new();
            m.set_reg(c.scalar_regs[&x], 7);
            m.set_mem(a, 1, 10);
            m.set_mem(a, 2, 20);
            m.run(&c.code).unwrap();
            m
        };
        let moves = run(PipelineStyle::Moves);
        let unrolled = run(PipelineStyle::Unrolled);
        assert_eq!(conv.memory(), moves.memory());
        assert_eq!(conv.memory(), unrolled.memory());
        // The conventional tail of the unrolled form may reload up to
        // U − 1 iterations' worth of elements.
        assert!(unrolled.stats.loads <= moves.stats.loads + 2);
        // Moves style: 2 moves per steady iteration; unrolled: only the
        // def→stage0 feed move remains (1 per iteration).
        assert!(
            unrolled.stats.moves < moves.stats.moves / 2,
            "unrolled {} vs moves {}",
            unrolled.stats.moves,
            moves.stats.moves
        );
        // Unrolled body executes fewer branches too (one test per 3 copies).
        assert!(unrolled.stats.branches < moves.stats.branches);
    }

    /// Odd trip counts exercise the conventional tail of the unrolled form.
    #[test]
    fn unrolled_tail_handles_remainders() {
        for ub in [1i64, 2, 3, 4, 5, 7, 11, 1000, 1001] {
            let src = format!("do i = 1, {ub} A[i+3] := A[i] + 1; end");
            let p = parse_program(&src).unwrap();
            let a = p.symbols.lookup_array("A").unwrap();
            let iv = p.sole_loop().unwrap().iv;
            let def_ref = match &p.sole_loop().unwrap().body[0] {
                Stmt::Assign(asn) => match &asn.lhs {
                    LValue::Elem(r) => r.clone(),
                    _ => panic!(),
                },
                _ => panic!(),
            };
            let plan = PipelinePlan {
                iv: Some(iv),
                ranges: vec![PipeRange {
                    array: a,
                    gen_stmt: StmtId(0),
                    gen_ref: def_ref,
                    gen_is_def: true,
                    gen_a: 1,
                    gen_b: 3,
                    depth: 4,
                    reuse_points: vec![ReusePoint {
                        stmt: StmtId(0),
                        aref: ArrayRef::new(a, Expr::Scalar(iv)),
                        distance: 3,
                    }],
                }],
            };
            let conv = compile(&p).unwrap();
            let unr = compile_with_style(&p, &plan, PipelineStyle::Unrolled).unwrap();
            let mut m1 = Machine::new();
            let mut m2 = Machine::new();
            for m in [&mut m1, &mut m2] {
                for k in -4..20 {
                    m.set_mem(a, k, k * 3 + 1);
                }
            }
            m1.run(&conv.code).unwrap();
            m2.run(&unr.code).unwrap();
            assert_eq!(m1.memory(), m2.memory(), "ub = {ub}");
        }
    }
}

#[cfg(test)]
mod listing_shape_tests {
    use super::*;
    use arrayflow_ir::parse_program;

    /// The paper's Fig. 5 (iii) code shape: inside the steady-state loop
    /// there are no loads at all — just the compute, the store, the stage
    /// feed and the progression moves.
    #[test]
    fn fig5_pipelined_listing_shape() {
        let p = parse_program("do i = 1, 1000 A[i+2] := A[i] + x; end").unwrap();
        let a = p.symbols.lookup_array("A").unwrap();
        let iv = p.sole_loop().unwrap().iv;
        let def_ref = ArrayRef::new(a, Expr::add(Expr::Scalar(iv), Expr::Const(2)));
        let plan = PipelinePlan {
            iv: Some(iv),
            ranges: vec![PipeRange {
                array: a,
                gen_stmt: StmtId(0),
                gen_ref: def_ref,
                gen_is_def: true,
                gen_a: 1,
                gen_b: 2,
                depth: 3,
                reuse_points: vec![ReusePoint {
                    stmt: StmtId(0),
                    aref: ArrayRef::new(a, Expr::Scalar(iv)),
                    distance: 2,
                }],
            }],
        };
        let c = compile_with(&p, &plan).unwrap();
        let listing = c.code.listing(&p.symbols);
        // Static loads: one in the peeled prologue body, two stage setups.
        let loads = listing.matches("load ").count();
        assert_eq!(loads, 3, "{listing}");
        // The steady-state body starts right after the two setup loads;
        // from there to the end: no loads, one store, three moves.
        let setup_pos = listing.rfind("load ").unwrap();
        let steady = &listing[setup_pos..];
        let steady_after_setup = &steady[steady.find('\n').unwrap()..];
        assert_eq!(steady_after_setup.matches("load ").count(), 0, "{listing}");
        assert_eq!(
            steady_after_setup.matches("store A(").count(),
            1,
            "{listing}"
        );
        assert_eq!(steady_after_setup.matches("move ").count(), 3, "{listing}");
        // And the store uses the classic A(rI+2) addressing of the paper.
        assert!(steady_after_setup.contains("+2) <-"), "{listing}");
    }
}
