//! The three-address virtual machine instruction set.
//!
//! The paper's optimizations target sequential and fine-grained parallel
//! machines where the dominant costs are memory loads and stores (its code
//! examples in Fig. 5 use exactly this style: `load r ← A(rI)`,
//! `store A(rI+2) ← r`, register-to-register moves and ALU operations).
//! This module defines that machine so generated code can be executed and
//! its memory traffic measured.

use std::fmt;

use arrayflow_ir::{ArrayId, BinOp, RelOp};

/// A virtual register. The machine has an unbounded register file; the
/// register *pressure* of generated code is reported separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A register or immediate operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Register contents.
    Reg(Reg),
    /// Immediate constant.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::Imm(i)
    }
}

/// A memory address within one array: `base + offset`, Fortran-style
/// `A(rI + c)` addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Addr {
    /// Index register, if any.
    pub base: Option<Reg>,
    /// Constant displacement.
    pub offset: i64,
}

impl Addr {
    /// `A(reg + offset)`
    pub fn indexed(base: Reg, offset: i64) -> Self {
        Self {
            base: Some(base),
            offset,
        }
    }

    /// `A(c)` — absolute element.
    pub fn absolute(offset: i64) -> Self {
        Self { base: None, offset }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            Some(b) if self.offset == 0 => write!(f, "{b}"),
            Some(b) if self.offset > 0 => write!(f, "{b}+{}", self.offset),
            Some(b) => write!(f, "{b}{}", self.offset),
            None => write!(f, "{}", self.offset),
        }
    }
}

/// A branch target: an instruction index in the flat program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(pub usize);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One machine instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst ← ARRAY(addr)` — a memory load (cost `Cm`).
    Load {
        /// Destination register.
        dst: Reg,
        /// Array segment.
        array: ArrayId,
        /// Element address.
        addr: Addr,
    },
    /// `ARRAY(addr) ← src` — a memory store (cost `Cm`).
    Store {
        /// Array segment.
        array: ArrayId,
        /// Element address.
        addr: Addr,
        /// Stored value.
        src: Operand,
    },
    /// `dst ← src` — register move (the pipeline progression instruction).
    Move {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Operand,
    },
    /// `dst ← lhs op rhs`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `if lhs op rhs goto target`.
    Branch {
        /// Relation.
        op: RelOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Jump target when the relation holds.
        target: Label,
    },
    /// Unconditional jump.
    Jump(Label),
    /// End of program.
    Halt,
}

/// A flat machine program.
#[derive(Debug, Clone, Default)]
pub struct MProgram {
    /// Instructions; [`Label`]s index into this vector.
    pub insts: Vec<Inst>,
}

impl MProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction, returning its index.
    pub fn push(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    /// Current length (the label of the *next* instruction).
    pub fn here(&self) -> Label {
        Label(self.insts.len())
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Highest register index used plus one (the register pressure of the
    /// naive all-virtual assignment).
    pub fn num_regs(&self) -> u32 {
        let mut max = 0;
        let see_op = |op: &Operand, max: &mut u32| {
            if let Operand::Reg(r) = op {
                *max = (*max).max(r.0 + 1);
            }
        };
        for inst in &self.insts {
            match inst {
                Inst::Load { dst, addr, .. } => {
                    max = max.max(dst.0 + 1);
                    if let Some(b) = addr.base {
                        max = max.max(b.0 + 1);
                    }
                }
                Inst::Store { addr, src, .. } => {
                    see_op(src, &mut max);
                    if let Some(b) = addr.base {
                        max = max.max(b.0 + 1);
                    }
                }
                Inst::Move { dst, src } => {
                    max = max.max(dst.0 + 1);
                    see_op(src, &mut max);
                }
                Inst::Bin { dst, lhs, rhs, .. } => {
                    max = max.max(dst.0 + 1);
                    see_op(lhs, &mut max);
                    see_op(rhs, &mut max);
                }
                Inst::Branch { lhs, rhs, .. } => {
                    see_op(lhs, &mut max);
                    see_op(rhs, &mut max);
                }
                Inst::Jump(_) | Inst::Halt => {}
            }
        }
        max
    }

    /// Renders the program as an assembly listing.
    pub fn listing(&self, symbols: &arrayflow_ir::SymbolTable) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (k, inst) in self.insts.iter().enumerate() {
            let _ = write!(out, "{k:4}: ");
            let _ = match inst {
                Inst::Load { dst, array, addr } => {
                    writeln!(out, "load  {dst} <- {}({addr})", symbols.array_name(*array))
                }
                Inst::Store { array, addr, src } => {
                    writeln!(out, "store {}({addr}) <- {src}", symbols.array_name(*array))
                }
                Inst::Move { dst, src } => writeln!(out, "move  {dst} <- {src}"),
                Inst::Bin { op, dst, lhs, rhs } => {
                    let sym = match op {
                        BinOp::Add => "+",
                        BinOp::Sub => "-",
                        BinOp::Mul => "*",
                        BinOp::Div => "/",
                    };
                    writeln!(out, "alu   {dst} <- {lhs} {sym} {rhs}")
                }
                Inst::Branch {
                    op,
                    lhs,
                    rhs,
                    target,
                } => {
                    let sym = match op {
                        RelOp::Eq => "==",
                        RelOp::Ne => "!=",
                        RelOp::Lt => "<",
                        RelOp::Le => "<=",
                        RelOp::Gt => ">",
                        RelOp::Ge => ">=",
                    };
                    writeln!(out, "if    {lhs} {sym} {rhs} goto {target}")
                }
                Inst::Jump(l) => writeln!(out, "jump  {l}"),
                Inst::Halt => writeln!(out, "halt"),
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_regs_scans_all_positions() {
        let mut p = MProgram::new();
        p.push(Inst::Load {
            dst: Reg(3),
            array: ArrayId(0),
            addr: Addr::indexed(Reg(7), 1),
        });
        p.push(Inst::Halt);
        assert_eq!(p.num_regs(), 8);
    }

    #[test]
    fn addr_display() {
        assert_eq!(Addr::indexed(Reg(2), 0).to_string(), "r2");
        assert_eq!(Addr::indexed(Reg(2), 3).to_string(), "r2+3");
        assert_eq!(Addr::indexed(Reg(2), -1).to_string(), "r2-1");
        assert_eq!(Addr::absolute(5).to_string(), "5");
    }

    #[test]
    fn listing_is_readable() {
        let mut t = arrayflow_ir::SymbolTable::new();
        let a = t.array("A");
        let mut p = MProgram::new();
        p.push(Inst::Load {
            dst: Reg(0),
            array: a,
            addr: Addr::indexed(Reg(1), 0),
        });
        p.push(Inst::Halt);
        let txt = p.listing(&t);
        assert!(txt.contains("load  r0 <- A(r1)"), "{txt}");
    }
}
