//! Panic isolation and poison-free batch collection.
//!
//! Regression suite for the batch-results poison bug: a panic inside one
//! solver job used to poison the shared results mutex and fail
//! `analyze_batch` for *every* caller. A panicking job must now fail only
//! its own program, be counted in `arrayflow_worker_panics_total`, and
//! leave the engine fully usable.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use arrayflow_engine::{AnalysisError, Engine, EngineConfig};
use arrayflow_ir::{parse_program, Program};
use arrayflow_obs::MetricValue;
use arrayflow_resilience::{FaultPlan, FaultSurface};

/// Distinct (non-alpha-equivalent) programs so every one is a cache miss
/// and therefore reaches the solve seam.
fn distinct_programs(n: usize) -> Vec<Program> {
    (0..n)
        .map(|i| parse_program(&format!("do i = 1, 100 A[i+{}] := A[i] + x; end", i + 1)).unwrap())
        .collect()
}

fn worker_panics(engine: &Engine) -> u64 {
    match engine
        .registry()
        .snapshot()
        .find("arrayflow_worker_panics_total")
        .expect("counter is registered")
        .value
    {
        MetricValue::Counter(n) => n,
        ref v => panic!("unexpected metric value {v:?}"),
    }
}

/// A surface that injects exactly one solver panic, on the first solve.
#[derive(Debug, Default)]
struct PanicOnce {
    fired: AtomicBool,
}

impl FaultSurface for PanicOnce {
    fn solver_panic(&self) -> bool {
        !self.fired.swap(true, Ordering::SeqCst)
    }
}

#[test]
fn panicking_job_fails_only_its_own_program() {
    let mut engine = Engine::new(EngineConfig {
        workers: 4,
        ..Default::default()
    });
    engine.set_fault_surface(Arc::new(PanicOnce::default()));
    let programs = distinct_programs(8);

    let results = engine.analyze_batch(&programs);

    assert_eq!(results.len(), 8);
    let failed: Vec<&AnalysisError> = results.iter().filter_map(|r| r.error.as_ref()).collect();
    assert_eq!(failed.len(), 1, "exactly the injected panic fails");
    assert!(failed[0].is_internal());
    assert!(
        failed[0].message().contains("injected solver fault"),
        "panic payload is surfaced: {}",
        failed[0]
    );
    for r in &results {
        if r.error.is_none() {
            assert!(!r.loops.is_empty(), "program {} has its report", r.index);
        }
    }
    assert_eq!(worker_panics(&engine), 1);

    // The engine is not poisoned: a clean batch over the same inputs
    // succeeds, including the program that failed the first time.
    let retry = engine.analyze_batch(&programs);
    assert!(retry.iter().all(|r| r.error.is_none()));
    assert_eq!(worker_panics(&engine), 1, "no new panics on retry");
}

#[test]
fn every_solve_panicking_still_answers_every_program() {
    let mut engine = Engine::new(EngineConfig {
        workers: 2,
        ..Default::default()
    });
    // 100% solver panic rate: nothing can be analyzed, but every program
    // must still get a framed per-program answer, in order.
    engine.set_fault_surface(Arc::new(FaultPlan::parse("solver_panic=100%").unwrap()));
    let programs = distinct_programs(6);

    let results = engine.analyze_batch(&programs);

    assert_eq!(results.len(), 6);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.index, i, "input order is preserved");
        let e = r.error.as_ref().expect("every solve panicked");
        assert!(e.is_internal());
    }
    assert_eq!(worker_panics(&engine), 6);
}

#[test]
fn sequential_path_is_isolated_too() {
    // workers=1 takes the non-scoped path through analyze_one directly.
    let mut engine = Engine::new(EngineConfig {
        workers: 1,
        ..Default::default()
    });
    engine.set_fault_surface(Arc::new(PanicOnce::default()));
    let programs = distinct_programs(3);
    let results = engine.analyze_batch(&programs);
    assert_eq!(results.iter().filter(|r| r.error.is_some()).count(), 1);
    assert_eq!(worker_panics(&engine), 1);
}

/// A surface that stalls every solve by a fixed delay.
#[derive(Debug)]
struct Stall(Duration, AtomicUsize);

impl FaultSurface for Stall {
    fn solve_latency(&self) -> Option<Duration> {
        self.1.fetch_add(1, Ordering::Relaxed);
        Some(self.0)
    }
}

#[test]
fn latency_seam_stalls_the_solve_phase() {
    let stall = Arc::new(Stall(Duration::from_millis(20), AtomicUsize::new(0)));
    let mut engine = Engine::new(EngineConfig {
        workers: 1,
        ..Default::default()
    });
    engine.set_fault_surface(Arc::clone(&stall) as Arc<dyn FaultSurface>);
    let programs = distinct_programs(1);
    let results = engine.analyze_batch(&programs);
    assert!(results[0].error.is_none(), "latency is not a failure");
    assert_eq!(
        stall.1.load(Ordering::Relaxed),
        1,
        "seam consulted once per solve"
    );
    assert!(
        results[0].stats.micros >= 20_000,
        "solve stalled at least the injected delay, got {} µs",
        results[0].stats.micros
    );

    // Cache hits skip the solve phase entirely — and with it the seam.
    let again = engine.analyze_batch(&programs);
    assert!(again[0].error.is_none());
    assert_eq!(
        stall.1.load(Ordering::Relaxed),
        1,
        "hit path never consults the seam"
    );
}
