//! Determinism regression: `analyze_batch` is byte-identical for every
//! worker count, and equal to the sequential `analyses::driver` output.
//!
//! The engine's whole design rests on reports being pure structural
//! functions of the loop — cache hits, work-stealing order and thread
//! count must never show through in the results. This test pins that on
//! 200 seeded random programs (with deliberate duplicates so the cache is
//! actually exercised).

use arrayflow_analyses::{analyze_nest, dependences, redundant_stores, reuse_pairs};
use arrayflow_engine::{Engine, EngineConfig, ProblemSet};
use arrayflow_ir::Program;
use arrayflow_workloads::{random_loop, LoopShape};

const DEP_MAX_DISTANCE: u64 = 8;

/// 200 programs over three shapes, with seeds reused so well over half
/// the stream duplicates an earlier structure (60 distinct shape/seed
/// combinations).
fn workload() -> Vec<Program> {
    let shapes = [
        LoopShape::default(),
        LoopShape {
            stmts: 4,
            arrays: 2,
            ..LoopShape::default()
        },
        LoopShape {
            stmts: 12,
            cond_pct: 40,
            ..LoopShape::default()
        },
    ];
    (0..200)
        .map(|k| random_loop(&shapes[k % shapes.len()], (k % 60) as u64))
        .collect()
}

fn config(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        problems: ProblemSet::ALL,
        dep_max_distance: DEP_MAX_DISTANCE,
        ..EngineConfig::default()
    }
}

/// Renders one batch run as a single byte-comparable transcript.
fn run_rendered(workers: usize, programs: &[Program]) -> String {
    let engine = Engine::new(config(workers));
    let results = engine.analyze_batch(programs);
    assert_eq!(results.len(), programs.len());
    let mut out = String::new();
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.index, i, "results must come back in input order");
        assert!(r.error.is_none(), "program {i}: {:?}", r.error);
        out.push_str(&format!("== program {i} ==\n"));
        for lr in &r.loops {
            out.push_str(&lr.report.render());
        }
    }
    out
}

#[test]
fn worker_counts_are_byte_identical() {
    let programs = workload();
    let one = run_rendered(1, &programs);
    let four = run_rendered(4, &programs);
    let eight = run_rendered(8, &programs);
    assert_eq!(one, four, "1 vs 4 workers diverged");
    assert_eq!(one, eight, "1 vs 8 workers diverged");
}

#[test]
fn batch_equals_sequential_driver() {
    let programs = workload();
    let engine = Engine::new(config(4));
    let results = engine.analyze_batch(&programs);

    for (i, (program, result)) in programs.iter().zip(&results).enumerate() {
        // The engine normalizes and renumbers a private copy; mirror that
        // preparation before handing the program to the plain driver.
        let mut p = program.clone();
        arrayflow_ir::normalize(&mut p);
        p.renumber();
        let nest = analyze_nest(&p).unwrap_or_else(|e| panic!("program {i}: {e}"));

        assert_eq!(
            result.loops.len(),
            nest.len(),
            "program {i}: loop count mismatch"
        );
        for (level, (lr, a)) in result.loops.iter().zip(&nest).enumerate() {
            let report = &lr.report;
            assert_eq!(
                report.reuses,
                reuse_pairs(&a.graph, &a.sites, &a.available),
                "program {i} loop {level}: reuse pairs diverge from the driver"
            );
            assert_eq!(
                report.redundant_stores,
                redundant_stores(&a.graph, &a.sites, &a.busy),
                "program {i} loop {level}: redundant stores diverge from the driver"
            );
            assert_eq!(
                report.dependences,
                dependences(&a.graph, &a.sites, &a.reaching_refs, DEP_MAX_DISTANCE),
                "program {i} loop {level}: dependences diverge from the driver"
            );
            assert_eq!(report.nodes, a.graph.len(), "program {i} loop {level}");
            assert_eq!(report.sites, a.sites.len(), "program {i} loop {level}");
        }
    }
}

#[test]
fn duplicated_stream_hits_the_cache() {
    let programs = workload();
    let engine = Engine::new(config(4));
    engine.analyze_batch(&programs);
    let stats = engine.stats();
    assert_eq!(stats.programs, 200);
    assert!(
        stats.hit_rate() > 0.5,
        "duplicated stream should hit > 50%, got {:.2}",
        stats.hit_rate()
    );
    // Hits skip the solver entirely: far fewer solves than loops.
    assert!(stats.cache.misses < stats.loops);
    assert_eq!(stats.cache.hits + stats.cache.misses, stats.loops);
}
