//! The fingerprint-first fast path: probe the cache before any parse or
//! normalize work, fall back to full analysis only on a miss.

use std::sync::Arc;

use arrayflow_engine::{Engine, EngineConfig, ProblemSet};
use arrayflow_ir::{fingerprint_loop, parse_program};

const SRC: &str = "do i = 1, 100 A[i+2] := A[i] + x; end";

fn canonical_fingerprint(src: &str) -> arrayflow_ir::Fingerprint {
    // Mirror the engine's keying: normalize + renumber, then fingerprint
    // the loop.
    let mut p = parse_program(src).unwrap();
    arrayflow_ir::normalize(&mut p);
    p.renumber();
    fingerprint_loop(p.sole_loop().unwrap(), &p.symbols)
}

#[test]
fn miss_then_hit_with_counters() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..Default::default()
    });
    let fp = canonical_fingerprint(SRC);
    let problems = ProblemSet::ALL;
    let dist = engine.config().dep_max_distance;

    // Nothing analyzed yet: the probe misses and says so.
    assert!(engine.analyze_by_fingerprint(fp, problems, dist).is_none());
    assert_eq!(engine.stats().fingerprint_misses, 1);
    assert_eq!(engine.stats().fingerprint_fast_hits, 0);

    // Full analysis populates the cache under the same key.
    let program = parse_program(SRC).unwrap();
    let full = engine.analyze_with(0, &program, problems, dist);
    assert!(full.error.is_none());
    assert_eq!(full.loops.len(), 1);
    assert_eq!(full.loops[0].fingerprint, fp);

    // Now the probe hits — and returns the *same* report allocation the
    // full path cached, so responses built from it are byte-identical.
    let hit = engine.analyze_by_fingerprint(fp, problems, dist).unwrap();
    assert!(Arc::ptr_eq(&hit, &full.loops[0].report));
    assert_eq!(engine.stats().fingerprint_fast_hits, 1);
    assert_eq!(engine.stats().fingerprint_misses, 1);
}

#[test]
fn distinct_problem_sets_are_distinct_keys() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..Default::default()
    });
    let fp = canonical_fingerprint(SRC);
    let dist = engine.config().dep_max_distance;
    let program = parse_program(SRC).unwrap();
    engine.analyze_with(0, &program, ProblemSet::ALL, dist);

    // Same fingerprint, different problem selection: a different key.
    let reaching_only = ProblemSet::from_bits(0b0001).unwrap();
    assert!(engine
        .analyze_by_fingerprint(fp, reaching_only, dist)
        .is_none());
    assert!(engine
        .analyze_by_fingerprint(fp, ProblemSet::ALL, dist)
        .is_some());
    // And a different distance bound misses too.
    assert!(engine
        .analyze_by_fingerprint(fp, ProblemSet::ALL, dist + 1)
        .is_none());
}

#[test]
fn counters_appear_in_metrics_exposition() {
    let engine = Engine::default();
    let fp = canonical_fingerprint(SRC);
    engine.analyze_by_fingerprint(fp, ProblemSet::ALL, 8);
    let text = engine.registry().snapshot().render_prometheus();
    assert!(text.contains("arrayflow_fingerprint_misses_total 1"));
    assert!(text.contains("arrayflow_fingerprint_fast_hits_total 0"));
}
