//! Engine-level session behavior: delta reports must render byte-identical
//! to fresh full analyses, and the session store must enforce its bounds.

use arrayflow_engine::{Engine, EngineConfig};
use arrayflow_ir::{parse_program, Edit};
use arrayflow_workloads::{random_edit, random_loop, LoopShape};

#[test]
fn delta_report_renders_identical_to_fresh_analysis() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..Default::default()
    });
    let shape = LoopShape::default();
    for seed in 0..8 {
        let p = random_loop(&shape, seed);
        let (id, _) = engine.open_session(&p).unwrap();
        let mut source = p;
        source.renumber();
        for step in 0..4 {
            let edit = random_edit(&source, &shape, seed * 31 + step).unwrap();
            let delta = engine.analyze_delta(id, &edit).unwrap();
            arrayflow_ir::apply_edit(&mut source, &edit).unwrap();
            let fresh = engine.analyze_one(0, &source);
            assert!(fresh.error.is_none(), "seed {seed} step {step}");
            let fresh_report = &fresh.loops[0].report;
            assert_eq!(delta.fingerprint, fresh.loops[0].fingerprint);
            assert_eq!(
                delta.report.render(),
                fresh_report.render(),
                "seed {seed} step {step} diverged"
            );
        }
    }
    let stats = engine.session_stats();
    assert_eq!(stats.deltas_total, 32);
    assert!(stats.deltas_total > stats.delta_fallbacks);
}

#[test]
fn delta_metrics_and_memoization() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..Default::default()
    });
    let p = parse_program("do i = 1, 100 A[i+1] := A[i]; B[i] := A[i]; end").unwrap();
    let (id, report) = engine.open_session(&p).unwrap();
    // The session-path report is memoized: a fingerprint-first probe hits.
    assert!(engine
        .analyze_by_fingerprint(report.fingerprint, report.problems, report.dep_max_distance)
        .is_some());

    let ids = arrayflow_workloads::assign_ids(&{
        let mut q = p.clone();
        q.renumber();
        q
    });
    let edit = Edit {
        stmt: ids[1],
        text: "B[i] := A[i] + 1;".to_string(),
    };
    let delta = engine.analyze_delta(id, &edit).unwrap();
    assert!(!delta.fallback);
    assert!(engine
        .analyze_by_fingerprint(
            delta.fingerprint,
            delta.report.problems,
            delta.report.dep_max_distance
        )
        .is_some());

    let snap = engine.registry().snapshot();
    let counter = |name: &str| match snap.find(name).map(|m| &m.value) {
        Some(arrayflow_obs::MetricValue::Counter(v)) => *v,
        other => panic!("{name}: {other:?}"),
    };
    assert_eq!(counter("arrayflow_delta_requests_total"), 1);
    assert_eq!(counter("arrayflow_delta_fallbacks_total"), 0);

    // Structural edit: falls back, still correct, counted.
    let edit = Edit {
        stmt: ids[0],
        text: "if A[i] > 0 then A[i+1] := A[i]; end".to_string(),
    };
    let delta = engine.analyze_delta(id, &edit).unwrap();
    assert!(delta.fallback);
    let snap = engine.registry().snapshot();
    let counter = |name: &str| match snap.find(name).map(|m| &m.value) {
        Some(arrayflow_obs::MetricValue::Counter(v)) => *v,
        other => panic!("{name}: {other:?}"),
    };
    assert_eq!(counter("arrayflow_delta_requests_total"), 2);
    assert_eq!(counter("arrayflow_delta_fallbacks_total"), 1);
}

#[test]
fn unknown_sessions_and_capacity() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        session_capacity: 2,
        ..Default::default()
    });
    let p = parse_program("do i = 1, 100 A[i+1] := A[i]; end").unwrap();
    let edit = Edit {
        stmt: arrayflow_ir::StmtId(0),
        text: "A[i+2] := A[i];".to_string(),
    };
    let err = engine.analyze_delta(99, &edit).unwrap_err();
    assert!(!err.is_internal());

    let (a, _) = engine.open_session(&p).unwrap();
    let (_b, _) = engine.open_session(&p).unwrap();
    let (_c, _) = engine.open_session(&p).unwrap();
    // Capacity 2: the oldest session was evicted.
    assert!(engine.analyze_delta(a, &edit).is_err());
    let stats = engine.session_stats();
    assert_eq!(stats.open, 2);
    assert_eq!(stats.opened_total, 3);
    assert_eq!(stats.evicted_capacity, 1);

    assert!(engine.close_session(_b));
    assert!(!engine.close_session(_b));
    assert_eq!(engine.session_stats().open, 1);
}
