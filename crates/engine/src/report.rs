//! Cacheable, alpha-invariant analysis reports.
//!
//! A [`AnalysisReport`] is the *shareable* outcome of analyzing one loop:
//! every fact in it is stated in structural terms — site indices in
//! lexical order, tracked-reference indices, iteration distances, solver
//! visit counts — and never in terms of variable or array *names*. That is
//! what makes it sound to hand the same report to every loop with the same
//! canonical fingerprint: alpha-equivalent loops produce byte-identical
//! reports, so the memo cache can return one `Arc` for all of them.

use std::fmt::Write as _;

use arrayflow_analyses::{
    dependences, redundant_stores, reuse_pairs, AnalyzeError, CustomAnalysis, Dep, LoopAnalysis,
    RedundantStore, Reuse,
};
use arrayflow_core::{CustomSpec, Dist, SolveStats};
use arrayflow_ir::{Fingerprint, Loop, SymbolTable};

/// Which framework instances a query runs (and therefore which report
/// sections are filled). Part of the cache key: the same loop analyzed
/// under different problem selections is a different memo entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemSet {
    /// Must-reaching definitions (§3.5).
    pub reaching: bool,
    /// δ-available values (§4.1.1) and the reuse pairs derived from them.
    pub available: bool,
    /// δ-busy stores (§4.2.1) and the redundant stores derived from them.
    pub busy: bool,
    /// δ-reaching references (§4.3) and the dependences derived from them.
    pub reaching_refs: bool,
}

impl ProblemSet {
    /// All four canonical instances.
    pub const ALL: ProblemSet = ProblemSet {
        reaching: true,
        available: true,
        busy: true,
        reaching_refs: true,
    };

    /// No canonical instance — the selection a custom-spec report carries,
    /// so its cache key and encoding stay canonical.
    pub const NONE: ProblemSet = ProblemSet {
        reaching: false,
        available: false,
        busy: false,
        reaching_refs: false,
    };

    /// Compact encoding used in cache keys and renderings.
    pub fn bits(self) -> u8 {
        (self.reaching as u8)
            | (self.available as u8) << 1
            | (self.busy as u8) << 2
            | (self.reaching_refs as u8) << 3
    }

    /// Inverse of [`ProblemSet::bits`]; `None` if `bits` has stray high
    /// bits (e.g. when decoding untrusted persisted data).
    pub fn from_bits(bits: u8) -> Option<ProblemSet> {
        if bits & !0b1111 != 0 {
            return None;
        }
        Some(ProblemSet {
            reaching: bits & 0b0001 != 0,
            available: bits & 0b0010 != 0,
            busy: bits & 0b0100 != 0,
            reaching_refs: bits & 0b1000 != 0,
        })
    }
}

impl Default for ProblemSet {
    fn default() -> Self {
        Self::ALL
    }
}

/// Solver-effort counters of one framework instance, copied out of
/// [`SolveStats`] (alpha-invariant: visit counts depend only on graph
/// shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceStats {
    /// Node visits in the initialization pass.
    pub init_visits: usize,
    /// Node visits across all iteration passes.
    pub iter_visits: usize,
    /// Iteration passes executed.
    pub passes: usize,
    /// Iteration passes that changed at least one value.
    pub changing_passes: usize,
}

impl From<&SolveStats> for InstanceStats {
    fn from(s: &SolveStats) -> Self {
        Self {
            init_visits: s.init_visits,
            iter_visits: s.iter_visits,
            passes: s.passes,
            changing_passes: s.changing_passes,
        }
    }
}

impl InstanceStats {
    /// Total node visits of this instance.
    pub fn visits(&self) -> usize {
        self.init_visits + self.iter_visits
    }
}

/// One converged lattice value of a custom instance, stated structurally:
/// the tracked reference (by component index and generator site index) and
/// the flow-order input distance at a node. Bottom values are omitted from
/// reports, so every recorded value is a fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomValue {
    /// Component index of the tracked reference ([`arrayflow_core::RefId`]).
    pub gen: u32,
    /// Site-table index of the generating reference.
    pub gen_site: u32,
    /// Flow-graph node the value holds at (flow-order input).
    pub node: u32,
    /// The converged distance.
    pub dist: Dist,
}

/// The converged facts of one user-specified (G, K) instance — the custom
/// counterpart of the canned report sections, and alpha-invariant like
/// them: component indices, site indices, node ids and distances only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomResult {
    /// The spec that was solved.
    pub spec: CustomSpec,
    /// Solver-effort counters of the instance.
    pub stats: InstanceStats,
    /// Tracked components (`m = |G|` after dropping non-affine sites).
    pub width: usize,
    /// Every non-bottom converged input value, in (gen, node) order.
    pub values: Vec<CustomValue>,
}

/// The complete, cacheable analysis of one loop level.
///
/// Byte-identical across alpha-equivalent loops and across worker-thread
/// schedules; compare with `==` or via [`AnalysisReport::render`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Canonical fingerprint of the analyzed loop.
    pub fingerprint: Fingerprint,
    /// Which instances were run.
    pub problems: ProblemSet,
    /// `max_distance` bound used for dependence extraction.
    pub dep_max_distance: u64,
    /// Flow graph size (nodes).
    pub nodes: usize,
    /// Number of classified reference sites.
    pub sites: usize,
    /// Solver counters per instance, in the fixed order (reaching,
    /// available, busy, reaching_refs); `None` for instances not run.
    pub reaching_stats: Option<InstanceStats>,
    /// See [`AnalysisReport::reaching_stats`].
    pub available_stats: Option<InstanceStats>,
    /// See [`AnalysisReport::reaching_stats`].
    pub busy_stats: Option<InstanceStats>,
    /// See [`AnalysisReport::reaching_stats`].
    pub reaching_refs_stats: Option<InstanceStats>,
    /// Guaranteed constant-distance reuse pairs (requires `available`).
    pub reuses: Vec<Reuse>,
    /// δ-redundant stores (requires `busy`).
    pub redundant_stores: Vec<RedundantStore>,
    /// Potential dependences up to `dep_max_distance` (requires
    /// `reaching_refs`).
    pub dependences: Vec<Dep>,
    /// The converged custom instance, when this report answers a `custom`
    /// request (`problems` is then [`ProblemSet::NONE`] and the canned
    /// sections are empty).
    pub custom: Option<CustomResult>,
}

impl AnalysisReport {
    /// Analyzes one normalized loop and distills the cacheable report.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalyzeError`] (e.g. the loop is not normalized).
    pub fn of_loop(
        l: &Loop,
        symbols: &SymbolTable,
        problems: ProblemSet,
        dep_max_distance: u64,
    ) -> Result<Self, AnalyzeError> {
        Self::of_loop_ctrl(l, symbols, problems, dep_max_distance, None)
    }

    /// Like [`AnalysisReport::of_loop`], but polls `should_stop` between
    /// solver passes and yields [`AnalyzeError::Stopped`] — with the
    /// wasted pass count — instead of a report. With `None` the result is
    /// identical to [`AnalysisReport::of_loop`].
    pub fn of_loop_ctrl(
        l: &Loop,
        symbols: &SymbolTable,
        problems: ProblemSet,
        dep_max_distance: u64,
        should_stop: Option<arrayflow_core::StopCheck<'_>>,
    ) -> Result<Self, AnalyzeError> {
        let fingerprint = arrayflow_ir::fingerprint_loop(l, symbols);
        // The full LoopAnalysis runs all four instances; distill only what
        // was asked for. The solver is cheap (≤ 3 passes per instance), so
        // a finer-grained lazy scheme is not worth the code.
        let a = LoopAnalysis::of_loop_ctrl(l, symbols, should_stop)?;
        Ok(Self::of_analysis(
            fingerprint,
            &a,
            problems,
            dep_max_distance,
        ))
    }

    /// Distills the cacheable report from an already-converged analysis —
    /// the path the incremental session layer takes, where the fixed point
    /// comes out of a [`Session`](arrayflow_incremental::Session) rather
    /// than a fresh solve.
    pub fn of_analysis(
        fingerprint: Fingerprint,
        a: &LoopAnalysis,
        problems: ProblemSet,
        dep_max_distance: u64,
    ) -> Self {
        let reuses = if problems.available {
            reuse_pairs(&a.graph, &a.sites, &a.available)
        } else {
            Vec::new()
        };
        let stores = if problems.busy {
            redundant_stores(&a.graph, &a.sites, &a.busy)
        } else {
            Vec::new()
        };
        let deps = if problems.reaching_refs {
            dependences(&a.graph, &a.sites, &a.reaching_refs, dep_max_distance)
        } else {
            Vec::new()
        };
        Self {
            fingerprint,
            problems,
            dep_max_distance,
            nodes: a.graph.len(),
            sites: a.sites.len(),
            reaching_stats: problems.reaching.then(|| (&a.reaching.sol.stats).into()),
            available_stats: problems.available.then(|| (&a.available.sol.stats).into()),
            busy_stats: problems.busy.then(|| (&a.busy.sol.stats).into()),
            reaching_refs_stats: problems
                .reaching_refs
                .then(|| (&a.reaching_refs.sol.stats).into()),
            reuses,
            redundant_stores: stores,
            dependences: deps,
            custom: None,
        }
    }

    /// Analyzes one normalized loop under a user-specified (G, K) spec and
    /// distills the cacheable report: empty canned sections, and the full
    /// non-bottom fixed point in [`AnalysisReport::custom`].
    ///
    /// # Errors
    ///
    /// Propagates [`AnalyzeError`] (e.g. the loop is not normalized).
    pub fn of_custom(
        l: &Loop,
        symbols: &SymbolTable,
        spec: CustomSpec,
        dep_max_distance: u64,
    ) -> Result<Self, AnalyzeError> {
        Self::of_custom_ctrl(l, symbols, spec, dep_max_distance, None)
    }

    /// [`AnalysisReport::of_custom`] with a cooperative stop check (see
    /// [`AnalysisReport::of_loop_ctrl`]).
    pub fn of_custom_ctrl(
        l: &Loop,
        symbols: &SymbolTable,
        spec: CustomSpec,
        dep_max_distance: u64,
        should_stop: Option<arrayflow_core::StopCheck<'_>>,
    ) -> Result<Self, AnalyzeError> {
        let fingerprint = arrayflow_ir::fingerprint_loop(l, symbols);
        let a = CustomAnalysis::of_loop_ctrl(l, symbols, spec, should_stop)?;
        let mut values = Vec::new();
        for (gen_id, gen_site) in a.instance.gens() {
            for node in 0..a.graph.len() {
                let node = arrayflow_graph::NodeId(node as u32);
                let dist = a.instance.before(node, gen_id);
                if dist != Dist::Bottom {
                    values.push(CustomValue {
                        gen: gen_id.0,
                        gen_site: gen_site as u32,
                        node: node.0,
                        dist,
                    });
                }
            }
        }
        Ok(Self {
            fingerprint,
            problems: ProblemSet::NONE,
            dep_max_distance,
            nodes: a.graph.len(),
            sites: a.sites.len(),
            reaching_stats: None,
            available_stats: None,
            busy_stats: None,
            reaching_refs_stats: None,
            reuses: Vec::new(),
            redundant_stores: Vec::new(),
            dependences: Vec::new(),
            custom: Some(CustomResult {
                spec,
                stats: (&a.instance.sol.stats).into(),
                width: a.instance.built.spec.width(),
                values,
            }),
        })
    }

    /// Instances actually run, with their counters (a custom instance
    /// reports under the name `custom`).
    pub fn instance_stats(&self) -> impl Iterator<Item = (&'static str, InstanceStats)> + '_ {
        [
            ("reaching", self.reaching_stats),
            ("available", self.available_stats),
            ("busy", self.busy_stats),
            ("reaching_refs", self.reaching_refs_stats),
            ("custom", self.custom.as_ref().map(|c| c.stats)),
        ]
        .into_iter()
        .filter_map(|(n, s)| s.map(|s| (n, s)))
    }

    /// Total solver node visits across the instances run.
    pub fn node_visits(&self) -> usize {
        self.instance_stats().map(|(_, s)| s.visits()).sum()
    }

    /// Total solver iteration passes across the instances run.
    pub fn solver_passes(&self) -> usize {
        self.instance_stats().map(|(_, s)| s.passes).sum()
    }

    /// Renders the report as stable, name-free text. Two reports render
    /// identically iff they are equal — the determinism regression tests
    /// compare these bytes across thread counts and against the sequential
    /// driver.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loop fp={} problems={:#06b} maxdist={} nodes={} sites={}",
            self.fingerprint,
            self.problems.bits(),
            self.dep_max_distance,
            self.nodes,
            self.sites
        );
        if let Some(c) = &self.custom {
            let _ = writeln!(out, "  custom spec={} width={}", c.spec.label(), c.width);
        }
        for (name, s) in self.instance_stats() {
            let _ = writeln!(
                out,
                "  solve {name}: init={} iter={} passes={} changing={}",
                s.init_visits, s.iter_visits, s.passes, s.changing_passes
            );
        }
        if let Some(c) = &self.custom {
            for v in &c.values {
                let dist = match v.dist {
                    Dist::Bottom => "bot".to_string(),
                    Dist::Fin(x) => x.to_string(),
                    Dist::Top => "top".to_string(),
                };
                let _ = writeln!(
                    out,
                    "  val gen={} site={} node={} dist={dist}",
                    v.gen, v.gen_site, v.node
                );
            }
        }
        for r in &self.reuses {
            let _ = writeln!(
                out,
                "  reuse use_site={} gen_site={} dist={} gen_is_def={}",
                r.use_site, r.gen_site, r.distance, r.gen_is_def
            );
        }
        for s in &self.redundant_stores {
            let _ = writeln!(
                out,
                "  redundant_store site={} killer={} dist={}",
                s.store_site, s.killer_site, s.distance
            );
        }
        for d in &self.dependences {
            let _ = writeln!(
                out,
                "  dep {:?} src={} dst={} dist={}",
                d.kind, d.src_site, d.dst_site, d.distance
            );
        }
        out
    }
}
