#![warn(missing_docs)]
//! Concurrent, memoizing batch analysis engine.
//!
//! The framework's per-loop cost is deliberately tiny — must-problems
//! converge in three passes, may-problems in two — which makes one loop
//! analysis the ideal unit of work for a high-throughput service. This
//! crate supplies the orchestration layer that turns the one-loop-at-a-time
//! driver of `arrayflow-analyses` into a batch engine:
//!
//! * **canonical fingerprints** ([`arrayflow_ir::canon`]) identify
//!   alpha-equivalent loops, so the thousands of structurally identical
//!   loops a compiler or autotuner emits are analyzed once;
//! * a **sharded memo cache** ([`MemoCache`]) keyed by
//!   `(fingerprint, problem selection)` stores completed
//!   [`AnalysisReport`]s behind per-shard `RwLock`s with hit/miss/eviction
//!   counters;
//! * a **worker pool** ([`Engine::analyze_batch`]) fans a `Vec<Program>`
//!   out across `std::thread` workers; within each program, loops are
//!   analyzed innermost first so summary-level results are cached before
//!   enclosing loops (and later duplicates) need them;
//! * per-query [`QueryStats`] and engine-wide [`EngineStats`] expose cache
//!   hits, solver passes, node visits and wall-clock.
//!
//! Reports are *alpha-invariant* — every fact is in terms of site indices
//! and iteration distances, never names — which is precisely why one cached
//! report can serve every loop with the same fingerprint, and why results
//! are byte-identical for every worker count.
//!
//! ```
//! use arrayflow_engine::{Engine, EngineConfig};
//! use arrayflow_ir::parse_program;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let batch: Vec<_> = ["i", "j"] // alpha-equivalent: one solve, one hit
//!     .iter()
//!     .map(|iv| parse_program(&format!(
//!         "do {iv} = 1, 50 A[{iv}+1] := A[{iv}] + 1; end")).unwrap())
//!     .collect();
//! let results = engine.analyze_batch(&batch);
//! assert_eq!(results[0].loops[0].fingerprint, results[1].loops[0].fingerprint);
//! assert_eq!(engine.stats().cache.hits, 1);
//! ```

pub mod cache;
pub mod engine;
pub mod report;

pub use arrayflow_core::{CustomSpec, Direction, Mode, StopCheck};
pub use cache::{
    fingerprint_route_hash, CacheCounters, CacheKey, EvictionPolicy, MemoCache, SecondTier,
};
pub use engine::{
    passes_to_fix, AnalysisError, BatchResult, DeltaReport, Engine, EngineConfig, EngineStats,
    LoopReport, QueryStats, SOLVER_PASS_BUCKETS,
};
pub use report::{AnalysisReport, CustomResult, CustomValue, InstanceStats, ProblemSet};
