//! Sharded memoization cache for analysis reports.
//!
//! Keys are `(canonical fingerprint, problem selection)`; values are
//! [`Arc<AnalysisReport>`]s, so a hit is one atomic increment away from
//! free. The map is split into power-of-two shards, each behind its own
//! `RwLock`, selected by the high bits of the (already uniformly
//! distributed) fingerprint — readers on different shards never contend,
//! and writers only lock 1/Nth of the table. Eviction is FIFO per shard
//! with a configurable total capacity: analysis reports are small and
//! uniform, so recency tracking buys little over insertion order for loop
//! streams, and FIFO keeps the write path O(1).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use arrayflow_ir::Fingerprint;

use crate::report::{AnalysisReport, ProblemSet};

/// Full cache key: which loop (canonically) and which analysis of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical structural fingerprint of the loop.
    pub fingerprint: Fingerprint,
    /// Instances requested.
    pub problems: ProblemSet,
    /// Dependence-extraction distance bound (changes report contents).
    pub dep_max_distance: u64,
}

/// Monotonic hit/miss/eviction counters, readable while the cache is in
/// use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a report.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to respect capacity.
    pub evictions: u64,
    /// Successful inserts (idempotent re-inserts of the same key count).
    pub inserts: u64,
}

impl CacheCounters {
    /// Hits over total lookups, in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheCounters {
    /// One-line human-readable summary, e.g.
    /// `hits=63 misses=21 inserts=21 evictions=0 (75% hit rate)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} inserts={} evictions={} ({:.0}% hit rate)",
            self.hits,
            self.misses,
            self.inserts,
            self.evictions,
            100.0 * self.hit_rate()
        )
    }
}

struct Shard {
    map: HashMap<CacheKey, Arc<AnalysisReport>>,
    // Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// The sharded memo cache.
pub struct MemoCache {
    shards: Vec<RwLock<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
}

impl std::fmt::Debug for MemoCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("counters", &self.counters())
            .finish()
    }
}

impl MemoCache {
    /// Creates a cache with `shards` shards (rounded up to a power of two,
    /// minimum 1) holding at most `capacity` entries in total (0 means
    /// unbounded).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shard_capacity = if capacity == 0 {
            usize::MAX
        } else {
            capacity.div_ceil(n)
        };
        Self {
            shards: (0..n)
                .map(|_| {
                    RwLock::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        // The fingerprint is already a uniform hash; fold the halves and
        // mask. Problem-set/distance variants of one loop land in the same
        // shard, which is fine — they are distinct keys.
        let fp = key.fingerprint.0;
        ((fp ^ (fp >> 64)) as usize) & (self.shards.len() - 1)
    }

    /// Looks up a report, bumping the hit/miss counters.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<AnalysisReport>> {
        let shard = self.shards[self.shard_of(key)].read().unwrap();
        match shard.map.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(v))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a report, evicting the oldest entries of the shard if it is
    /// full. Re-inserting an existing key (two workers racing on the same
    /// loop) replaces the value — both values are byte-identical by
    /// construction, so the race is benign.
    pub fn insert(&self, key: CacheKey, value: Arc<AnalysisReport>) {
        let mut shard = self.shards[self.shard_of(&key)].write().unwrap();
        if shard.map.insert(key, value).is_none() {
            shard.order.push_back(key);
            while shard.map.len() > self.shard_capacity {
                // Every key in `order` was inserted exactly once, so the
                // front is always present in the map.
                let victim = shard.order.pop_front().expect("order tracks map");
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Current number of cached reports across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap().map.len())
            .sum()
    }

    /// True if no reports are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the monotonic counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u128) -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint(fp),
            problems: ProblemSet::ALL,
            dep_max_distance: 8,
        }
    }

    fn dummy_report(fp: u128) -> Arc<AnalysisReport> {
        Arc::new(AnalysisReport {
            fingerprint: Fingerprint(fp),
            problems: ProblemSet::ALL,
            dep_max_distance: 8,
            nodes: 0,
            sites: 0,
            reaching_stats: None,
            available_stats: None,
            busy_stats: None,
            reaching_refs_stats: None,
            reuses: Vec::new(),
            redundant_stores: Vec::new(),
            dependences: Vec::new(),
        })
    }

    #[test]
    fn hit_miss_counters() {
        let c = MemoCache::new(4, 64);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), dummy_report(1));
        assert!(c.get(&key(1)).is_some());
        let s = c.counters();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn distinct_problem_sets_are_distinct_keys() {
        let c = MemoCache::new(1, 64);
        c.insert(key(7), dummy_report(7));
        let other = CacheKey {
            problems: ProblemSet {
                reaching: true,
                available: false,
                busy: false,
                reaching_refs: false,
            },
            ..key(7)
        };
        assert!(c.get(&other).is_none());
    }

    #[test]
    fn eviction_respects_capacity_fifo() {
        let c = MemoCache::new(1, 2);
        for fp in 0..5u128 {
            c.insert(key(fp), dummy_report(fp));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().evictions, 3);
        // Oldest gone, newest present.
        assert!(c.get(&key(0)).is_none());
        assert!(c.get(&key(4)).is_some());
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let c = MemoCache::new(2, 0);
        for fp in 0..100u128 {
            c.insert(key(fp), dummy_report(fp));
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.counters().evictions, 0);
    }
}
