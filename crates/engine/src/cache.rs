//! Sharded memoization cache for analysis reports, with an optional
//! persistent second tier.
//!
//! Keys are `(canonical fingerprint, problem selection, distance bound)`;
//! values are [`Arc<AnalysisReport>`]s, so a hit is one atomic increment
//! away from free. The map is split into power-of-two shards, each behind
//! its own `RwLock`, selected by the high bits of the (already uniformly
//! distributed) fingerprint — readers on different shards never contend,
//! and writers only lock 1/Nth of the table.
//!
//! Eviction is second-chance by default: each entry carries one
//! referenced bit, set on lookup; the evictor scans the insertion queue
//! from the front, giving referenced entries one more round instead of
//! evicting them. That keeps the O(1) insert of FIFO while protecting a
//! hot working set from being flushed by a cold scan — a pure FIFO
//! ([`EvictionPolicy::Fifo`]) remains available for comparison.
//!
//! A cache can also be backed by a [`SecondTier`] (e.g. the disk-backed
//! report store of `arrayflow-store`): a memory miss falls through to the
//! tier, a tier hit is *promoted* into memory, and fresh inserts are
//! forwarded to the tier so they survive the process.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use arrayflow_core::CustomSpec;
use arrayflow_ir::Fingerprint;
use arrayflow_obs::{Counter, Registry};

use crate::report::{AnalysisReport, ProblemSet};

/// Full cache key: which loop (canonically) and which analysis of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical structural fingerprint of the loop.
    pub fingerprint: Fingerprint,
    /// Canned instances requested ([`ProblemSet::NONE`] for custom-spec
    /// queries, keeping `Eq`/`Hash` canonical).
    pub problems: ProblemSet,
    /// Dependence-extraction distance bound (changes report contents).
    pub dep_max_distance: u64,
    /// The user-specified (G, K) instance, for `custom` queries. Part of
    /// the key: two distinct specs over the same loop never collide, and
    /// a custom query never aliases a canned one.
    pub custom: Option<CustomSpec>,
}

impl CacheKey {
    /// The 64-bit routing hash of this key's fingerprint — see
    /// [`fingerprint_route_hash`]. Problem-set / distance variants of one
    /// loop share the hash on purpose: a cluster routes by *loop*, so all
    /// analyses of one program hit the same node's caches.
    pub fn route_hash(&self) -> u64 {
        fingerprint_route_hash(self.fingerprint)
    }
}

/// Folds a canonical 128-bit fingerprint into the 64-bit routing hash
/// used for cluster sharding. The fingerprint is already uniform, but
/// this runs the folded halves through a splitmix64 finalizer anyway so
/// any structure a future fingerprint revision introduces cannot skew
/// ring placement. Stable across processes and releases by contract:
/// routers and nodes must agree on it.
pub fn fingerprint_route_hash(fingerprint: Fingerprint) -> u64 {
    let fp = fingerprint.0;
    let mut z = (fp as u64) ^ ((fp >> 64) as u64);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a full shard chooses a victim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict in pure insertion order, ignoring lookups.
    Fifo,
    /// Second chance: entries referenced since their last consideration
    /// get re-queued once before they can be evicted. Still O(1) insert.
    #[default]
    SecondChance,
}

/// A persistence tier consulted on memory misses and fed on inserts.
///
/// Implementations must be cheap to call from the analysis path:
/// [`SecondTier::store`] in particular should hand the report off
/// asynchronously (the disk store uses a bounded writer-thread channel
/// and *drops* the append under backpressure rather than blocking).
pub trait SecondTier: Send + Sync {
    /// Fetches a report previously stored under `key`, if any.
    fn load(&self, key: &CacheKey) -> Option<Arc<AnalysisReport>>;
    /// Persists a freshly computed report. Must not block the caller.
    fn store(&self, key: &CacheKey, report: &Arc<AnalysisReport>);
}

/// Monotonic hit/miss/eviction counters, readable while the cache is in
/// use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that missed memory (a second-tier promotion may still have
    /// answered them; see [`CacheCounters::promotions`]).
    pub misses: u64,
    /// Entries evicted to respect capacity.
    pub evictions: u64,
    /// First-time inserts of a key.
    pub inserts: u64,
    /// Idempotent re-inserts of an existing key (two workers racing on
    /// the same loop) — counted apart so `inserts` tracks distinct keys.
    pub reinserts: u64,
    /// Memory misses answered by the second tier and promoted into
    /// memory.
    pub promotions: u64,
}

impl CacheCounters {
    /// Memory hits over total lookups, in `[0, 1]`; 0 when no lookups
    /// happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheCounters {
    /// One-line human-readable summary, e.g.
    /// `hits=63 misses=21 inserts=21 reinserts=0 evictions=0 promotions=0 (75% hit rate)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} inserts={} reinserts={} evictions={} promotions={} ({:.0}% hit rate)",
            self.hits,
            self.misses,
            self.inserts,
            self.reinserts,
            self.evictions,
            self.promotions,
            100.0 * self.hit_rate()
        )
    }
}

struct Entry {
    report: Arc<AnalysisReport>,
    // Set on every lookup hit; consulted (and cleared) by the
    // second-chance evictor. Relaxed is enough: the bit is a heuristic.
    referenced: AtomicBool,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    // Consideration order for the evictor (insertion order for FIFO).
    order: VecDeque<CacheKey>,
}

impl Shard {
    fn evict_to_capacity(
        &mut self,
        capacity: usize,
        policy: EvictionPolicy,
        just_inserted: Option<&CacheKey>,
    ) -> u64 {
        let mut evicted = 0;
        while self.map.len() > capacity {
            // Every key in `order` was queued exactly once, so the front
            // is always present in the map.
            let victim = self.order.pop_front().expect("order tracks map");
            if policy == EvictionPolicy::SecondChance {
                // CLOCK-style: the entry whose insertion triggered this
                // scan sits behind the hand — requeue it unconsidered, so
                // an all-referenced shard degenerates to FIFO instead of
                // evicting the newcomer.
                if Some(&victim) == just_inserted {
                    self.order.push_back(victim);
                    continue;
                }
                let entry = self.map.get(&victim).expect("order tracks map");
                // Referenced since last consideration: clear the bit and
                // give it one more round. Each non-skip pop clears a bit,
                // so the loop finds an unreferenced victim within one
                // cycle.
                if entry.referenced.swap(false, Ordering::Relaxed) {
                    self.order.push_back(victim);
                    continue;
                }
            }
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// The cache's monotone counters as registry handles — either standalone
/// (an engine without a shared registry) or registered under the
/// `arrayflow_cache_*` family names.
#[derive(Clone, Debug)]
struct CacheInstruments {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    inserts: Counter,
    reinserts: Counter,
    promotions: Counter,
}

impl CacheInstruments {
    fn unregistered() -> Self {
        Self {
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            inserts: Counter::new(),
            reinserts: Counter::new(),
            promotions: Counter::new(),
        }
    }

    fn registered(registry: &Registry) -> Self {
        Self {
            hits: registry.counter(
                "arrayflow_cache_hits_total",
                "memo cache lookups answered from memory",
            ),
            misses: registry.counter(
                "arrayflow_cache_misses_total",
                "memo cache lookups that missed memory",
            ),
            evictions: registry.counter(
                "arrayflow_cache_evictions_total",
                "memo cache entries evicted to respect capacity",
            ),
            inserts: registry.counter(
                "arrayflow_cache_inserts_total",
                "first-time memo cache inserts of a key",
            ),
            reinserts: registry.counter(
                "arrayflow_cache_reinserts_total",
                "idempotent re-inserts of an existing memo cache key",
            ),
            promotions: registry.counter(
                "arrayflow_cache_promotions_total",
                "memory misses answered by the second tier and promoted",
            ),
        }
    }
}

/// The sharded memo cache.
pub struct MemoCache {
    shards: Vec<RwLock<Shard>>,
    shard_capacity: usize,
    policy: EvictionPolicy,
    tier2: Option<Arc<dyn SecondTier>>,
    counters: CacheInstruments,
}

impl std::fmt::Debug for MemoCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("policy", &self.policy)
            .field("tier2", &self.tier2.is_some())
            .field("counters", &self.counters())
            .finish()
    }
}

impl MemoCache {
    /// Creates a cache with `shards` shards (rounded up to a power of two,
    /// minimum 1) holding at most `capacity` entries in total (0 means
    /// unbounded), evicting with the default second-chance policy.
    pub fn new(shards: usize, capacity: usize) -> Self {
        Self::with_policy(shards, capacity, EvictionPolicy::default())
    }

    /// Like [`MemoCache::new`] with an explicit eviction policy.
    pub fn with_policy(shards: usize, capacity: usize, policy: EvictionPolicy) -> Self {
        Self::with_instruments(shards, capacity, policy, CacheInstruments::unregistered())
    }

    /// Like [`MemoCache::with_policy`], registering the hit/miss/eviction
    /// counters under the `arrayflow_cache_*` names in `registry` so they
    /// appear in its snapshots and Prometheus exposition.
    pub fn with_policy_in(
        shards: usize,
        capacity: usize,
        policy: EvictionPolicy,
        registry: &Registry,
    ) -> Self {
        Self::with_instruments(
            shards,
            capacity,
            policy,
            CacheInstruments::registered(registry),
        )
    }

    fn with_instruments(
        shards: usize,
        capacity: usize,
        policy: EvictionPolicy,
        counters: CacheInstruments,
    ) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shard_capacity = if capacity == 0 {
            usize::MAX
        } else {
            capacity.div_ceil(n)
        };
        Self {
            shards: (0..n)
                .map(|_| {
                    RwLock::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            shard_capacity,
            policy,
            tier2: None,
            counters,
        }
    }

    /// Attaches a persistence tier: memory misses fall through to it (a
    /// tier hit is promoted into memory) and fresh inserts are forwarded
    /// to it. Call before sharing the cache.
    pub fn set_second_tier(&mut self, tier: Arc<dyn SecondTier>) {
        self.tier2 = Some(tier);
    }

    /// True when a second tier is attached.
    pub fn has_second_tier(&self) -> bool {
        self.tier2.is_some()
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        // The fingerprint is already a uniform hash; fold the halves and
        // mask. Problem-set/distance variants of one loop land in the same
        // shard, which is fine — they are distinct keys.
        let fp = key.fingerprint.0;
        ((fp ^ (fp >> 64)) as usize) & (self.shards.len() - 1)
    }

    /// Looks up a report, bumping the hit/miss counters. A memory miss
    /// falls through to the second tier when one is attached; a tier hit
    /// is promoted into memory (counted under `promotions`, still a
    /// memory `miss`) so the next lookup is free.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<AnalysisReport>> {
        {
            let shard = self.shards[self.shard_of(key)].read().unwrap();
            if let Some(entry) = shard.map.get(key) {
                entry.referenced.store(true, Ordering::Relaxed);
                self.counters.hits.inc();
                return Some(Arc::clone(&entry.report));
            }
        }
        self.counters.misses.inc();
        let report = self.tier2.as_ref()?.load(key)?;
        self.counters.promotions.inc();
        self.insert_memory(*key, Arc::clone(&report));
        Some(report)
    }

    /// Inserts a freshly computed report, evicting per the policy if the
    /// shard is full, and forwards it to the second tier (if attached) so
    /// it survives the process. Re-inserting an existing key (two workers
    /// racing on the same loop) replaces the value — both values are
    /// byte-identical by construction, so the race is benign; it is
    /// counted under `reinserts`, not `inserts`.
    pub fn insert(&self, key: CacheKey, value: Arc<AnalysisReport>) {
        if let Some(tier) = &self.tier2 {
            tier.store(&key, &value);
        }
        self.insert_memory(key, value);
    }

    /// Inserts into the memory tier only — used for second-tier
    /// promotions and for warm-start preloading, where the report is
    /// already persistent.
    pub fn preload(&self, key: CacheKey, value: Arc<AnalysisReport>) {
        self.insert_memory(key, value);
    }

    fn insert_memory(&self, key: CacheKey, value: Arc<AnalysisReport>) {
        let mut shard = self.shards[self.shard_of(&key)].write().unwrap();
        let entry = Entry {
            report: value,
            referenced: AtomicBool::new(false),
        };
        if shard.map.insert(key, entry).is_none() {
            shard.order.push_back(key);
            let evicted = shard.evict_to_capacity(self.shard_capacity, self.policy, Some(&key));
            if evicted > 0 {
                self.counters.evictions.add(evicted);
            }
            self.counters.inserts.inc();
        } else {
            self.counters.reinserts.inc();
        }
    }

    /// Visits every cached report (shard by shard, under the read lock).
    /// The order is unspecified. This is the export path: the service
    /// uses it to enumerate what a warm restart would preload, and tests
    /// use it to diff memory against the persistent tier.
    pub fn for_each(&self, mut f: impl FnMut(&CacheKey, &Arc<AnalysisReport>)) {
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            for (key, entry) in &shard.map {
                f(key, &entry.report);
            }
        }
    }

    /// Current number of cached reports across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap().map.len())
            .sum()
    }

    /// True if no reports are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the monotonic counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.counters.hits.get(),
            misses: self.counters.misses.get(),
            evictions: self.counters.evictions.get(),
            inserts: self.counters.inserts.get(),
            reinserts: self.counters.reinserts.get(),
            promotions: self.counters.promotions.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn key(fp: u128) -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint(fp),
            problems: ProblemSet::ALL,
            dep_max_distance: 8,
            custom: None,
        }
    }

    fn dummy_report(fp: u128) -> Arc<AnalysisReport> {
        Arc::new(AnalysisReport {
            fingerprint: Fingerprint(fp),
            problems: ProblemSet::ALL,
            dep_max_distance: 8,
            nodes: 0,
            sites: 0,
            reaching_stats: None,
            available_stats: None,
            busy_stats: None,
            reaching_refs_stats: None,
            reuses: Vec::new(),
            redundant_stores: Vec::new(),
            dependences: Vec::new(),
            custom: None,
        })
    }

    #[test]
    fn hit_miss_counters() {
        let c = MemoCache::new(4, 64);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), dummy_report(1));
        assert!(c.get(&key(1)).is_some());
        let s = c.counters();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn distinct_problem_sets_are_distinct_keys() {
        let c = MemoCache::new(1, 64);
        c.insert(key(7), dummy_report(7));
        let other = CacheKey {
            problems: ProblemSet {
                reaching: true,
                available: false,
                busy: false,
                reaching_refs: false,
            },
            ..key(7)
        };
        assert!(c.get(&other).is_none());
    }

    #[test]
    fn distinct_custom_specs_are_distinct_keys() {
        let c = MemoCache::new(1, 64);
        let spec = |bits| CustomSpec::from_bits(bits).expect("valid spec bits");
        // δ-live elements: G = uses, K = defs, backward, may.
        let live = CacheKey {
            problems: ProblemSet::NONE,
            custom: Some(spec(0b11_0110)),
            ..key(7)
        };
        c.insert(live, dummy_report(7));
        // A different spec over the same loop misses.
        let other = CacheKey {
            custom: Some(spec(0b00_0001)),
            ..live
        };
        assert!(c.get(&other).is_none());
        // A canned query over the same loop misses too — custom never
        // aliases canned.
        assert!(c.get(&key(7)).is_none());
        assert!(c.get(&live).is_some());
        // All analyses of one loop share the routing hash by design.
        assert_eq!(live.route_hash(), key(7).route_hash());
        assert_eq!(other.route_hash(), live.route_hash());
    }

    #[test]
    fn custom_keys_stay_distinct_through_the_second_tier() {
        let tier = Arc::new(MapTier::default());
        let mut c = MemoCache::new(1, 8);
        c.set_second_tier(Arc::clone(&tier) as Arc<dyn SecondTier>);
        let spec = |bits| CustomSpec::from_bits(bits).expect("valid spec bits");
        let a = CacheKey {
            problems: ProblemSet::NONE,
            custom: Some(spec(0b00_0101)),
            ..key(9)
        };
        let b = CacheKey {
            custom: Some(spec(0b10_0101)),
            ..a
        };
        c.insert(a, dummy_report(9));
        assert!(tier.map.lock().unwrap().contains_key(&a));
        assert!(!tier.map.lock().unwrap().contains_key(&b));
        // Seed `b` behind the cache's back; both promote independently.
        tier.store(&b, &dummy_report(9));
        assert!(c.get(&b).is_some());
        assert!(c.get(&a).is_some());
        assert_eq!(tier.map.lock().unwrap().len(), 2);
    }

    #[test]
    fn eviction_respects_capacity_fifo() {
        let c = MemoCache::with_policy(1, 2, EvictionPolicy::Fifo);
        for fp in 0..5u128 {
            c.insert(key(fp), dummy_report(fp));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().evictions, 3);
        // Oldest gone, newest present.
        assert!(c.get(&key(0)).is_none());
        assert!(c.get(&key(4)).is_some());
    }

    #[test]
    fn second_chance_protects_referenced_entries() {
        let c = MemoCache::with_policy(1, 2, EvictionPolicy::SecondChance);
        c.insert(key(0), dummy_report(0));
        c.insert(key(1), dummy_report(1));
        // Reference key 0; key 1 is the unreferenced victim despite being
        // newer.
        assert!(c.get(&key(0)).is_some());
        c.insert(key(2), dummy_report(2));
        assert_eq!(c.len(), 2);
        let before = c.counters().hits;
        assert!(c.get(&key(0)).is_some(), "referenced entry survived");
        assert_eq!(c.counters().hits, before + 1);
        assert!(c.get(&key(1)).is_none(), "unreferenced entry evicted");
    }

    #[test]
    fn second_chance_degenerates_to_fifo_when_all_referenced() {
        let c = MemoCache::with_policy(1, 2, EvictionPolicy::SecondChance);
        c.insert(key(0), dummy_report(0));
        c.insert(key(1), dummy_report(1));
        assert!(c.get(&key(0)).is_some());
        assert!(c.get(&key(1)).is_some());
        // All referenced: the evictor clears the bits in one cycle and
        // then evicts the (re-queued) oldest.
        c.insert(key(2), dummy_report(2));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(0)).is_none());
        assert!(c.get(&key(2)).is_some());
    }

    #[test]
    fn reinserts_do_not_inflate_inserts() {
        let c = MemoCache::new(1, 8);
        c.insert(key(3), dummy_report(3));
        c.insert(key(3), dummy_report(3));
        c.insert(key(3), dummy_report(3));
        let s = c.counters();
        assert_eq!((s.inserts, s.reinserts), (1, 2));
        assert_eq!(c.len(), 1);
        let line = s.to_string();
        assert!(line.contains("inserts=1"), "{line}");
        assert!(line.contains("reinserts=2"), "{line}");
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let c = MemoCache::new(2, 0);
        for fp in 0..100u128 {
            c.insert(key(fp), dummy_report(fp));
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.counters().evictions, 0);
    }

    #[test]
    fn for_each_visits_every_entry() {
        let c = MemoCache::new(4, 0);
        for fp in 0..10u128 {
            c.insert(key(fp), dummy_report(fp));
        }
        let mut seen: Vec<u128> = Vec::new();
        c.for_each(|k, _| seen.push(k.fingerprint.0));
        seen.sort_unstable();
        assert_eq!(seen, (0..10u128).collect::<Vec<_>>());
    }

    /// An in-memory second tier for exercising the fall-through, the
    /// promotion path and the insert forwarding without touching disk.
    #[derive(Default)]
    struct MapTier {
        map: Mutex<HashMap<CacheKey, Arc<AnalysisReport>>>,
    }

    impl SecondTier for MapTier {
        fn load(&self, key: &CacheKey) -> Option<Arc<AnalysisReport>> {
            self.map.lock().unwrap().get(key).cloned()
        }
        fn store(&self, key: &CacheKey, report: &Arc<AnalysisReport>) {
            self.map.lock().unwrap().insert(*key, Arc::clone(report));
        }
    }

    #[test]
    fn second_tier_promotion_and_forwarding() {
        let tier = Arc::new(MapTier::default());
        let mut c = MemoCache::new(1, 8);
        c.set_second_tier(Arc::clone(&tier) as Arc<dyn SecondTier>);

        // A fresh insert is forwarded to the tier.
        c.insert(key(1), dummy_report(1));
        assert!(tier.map.lock().unwrap().contains_key(&key(1)));

        // Seed the tier behind the cache's back: the first get misses
        // memory, promotes, and the second get hits memory.
        tier.store(&key(2), &dummy_report(2));
        assert!(c.get(&key(2)).is_some());
        let s = c.counters();
        assert_eq!((s.misses, s.promotions), (1, 1));
        assert!(c.get(&key(2)).is_some());
        assert_eq!(c.counters().hits, 1);

        // Preload does not forward back to the tier.
        c.preload(key(3), dummy_report(3));
        assert!(!tier.map.lock().unwrap().contains_key(&key(3)));
    }
}
