//! The batch engine: configuration, worker pool, per-query and global
//! statistics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use arrayflow_analyses::loops_innermost_first;
use arrayflow_core::CustomSpec;
use arrayflow_incremental::{Session, SessionStats, SessionStore, StoreConfig};
use arrayflow_ir::{fingerprint_loop, Edit, Fingerprint, Program};
use arrayflow_obs::{observed_span, Counter, Gauge, Histogram, Registry, PHASE_BUCKETS_US};
use arrayflow_resilience::{panic_message, FaultSurface};

use crate::cache::{CacheCounters, CacheKey, EvictionPolicy, MemoCache, SecondTier};
use crate::report::{AnalysisReport, InstanceStats, ProblemSet};

/// Upper edges of the per-instance solver pass-count histograms
/// (`arrayflow_solver_passes{problem=...}`). The paper's bound — three
/// passes for must-problems (one initialization pass plus two changing
/// iteration passes), two for may-problems — sits inside the first three
/// buckets, so the bound is assertable from an exported snapshot alone:
/// `cumulative_le(3) == count` for must, `cumulative_le(2) == count` for
/// may.
pub const SOLVER_PASS_BUCKETS: [u64; 5] = [1, 2, 3, 4, 6];

/// Passes this instance needed to *reach* its fixed point: the
/// initialization pass (must-problems only) plus the iteration passes
/// that changed a value — the quantity the paper bounds by 3 (must) and
/// 2 (may). The confirming final pass of the general solver is excluded,
/// matching [`SolveStats::visits_to_fix`](arrayflow_core::SolveStats).
pub fn passes_to_fix(s: &InstanceStats) -> u64 {
    (s.init_visits > 0) as u64 + s.changing_passes as u64
}

/// Engine construction parameters. `Default` is a sensible production
/// setup: one worker per hardware thread, 16 cache shards, 64k cached
/// reports.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for [`Engine::analyze_batch`]. `0` means one per
    /// available hardware thread.
    pub workers: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Total cached reports across shards; `0` disables eviction.
    pub cache_capacity: usize,
    /// How a full cache shard picks its victim.
    pub eviction: EvictionPolicy,
    /// Which framework instances each query runs.
    pub problems: ProblemSet,
    /// Distance bound for dependence extraction (part of the cache key).
    pub dep_max_distance: u64,
    /// Maximum simultaneously open analysis sessions; opening one more
    /// evicts the least recently used.
    pub session_capacity: usize,
    /// Idle milliseconds after which an analysis session expires; `0`
    /// disables the TTL.
    pub session_ttl_ms: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            cache_shards: 16,
            cache_capacity: 65_536,
            eviction: EvictionPolicy::default(),
            problems: ProblemSet::ALL,
            dep_max_distance: 8,
            session_capacity: 64,
            session_ttl_ms: 600_000,
        }
    }
}

impl EngineConfig {
    /// The worker count actually used (resolving `0`).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Why a program of a batch failed. The distinction matters to callers:
/// an [`AnalysisError::Analysis`] is the framework rejecting the input
/// (deterministic, retrying is pointless), an
/// [`AnalysisError::Internal`] is the engine failing on the input — a
/// panicking solver worker, a worker that died before reporting — which
/// the fault-tolerance layer contains to the one affected program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The analysis rejected the input (e.g. a non-affine subscript).
    Analysis(String),
    /// The engine failed while running the analysis; other programs of
    /// the batch are unaffected.
    Internal(String),
    /// The session a `delta` targeted no longer exists on the answering
    /// node — never opened there, evicted, TTL-expired, or lost to a
    /// mid-session failover. Retrying the delta is pointless; the client
    /// re-`open`s and replays its edits.
    SessionLost(String),
    /// The request's cooperative stop check fired mid-solve (client gone
    /// or deadline exhausted) and the engine yielded. `passes` is the
    /// solver iteration passes wasted before the stop was observed; no
    /// partial result was cached or memoized anywhere.
    Cancelled {
        /// Solver passes completed before the stop was observed.
        passes: u64,
    },
}

impl AnalysisError {
    /// The human-readable message, without the kind prefix.
    pub fn message(&self) -> &str {
        match self {
            AnalysisError::Analysis(m)
            | AnalysisError::Internal(m)
            | AnalysisError::SessionLost(m) => m,
            AnalysisError::Cancelled { .. } => "request cancelled before the solve completed",
        }
    }

    /// `true` for engine-side failures (panics, dead workers).
    pub fn is_internal(&self) -> bool {
        matches!(self, AnalysisError::Internal(_))
    }

    /// Solver passes wasted by a cancelled request, if this is a
    /// cancellation.
    pub fn wasted_passes(&self) -> Option<u64> {
        match self {
            AnalysisError::Cancelled { passes } => Some(*passes),
            _ => None,
        }
    }
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Analysis(m) | AnalysisError::SessionLost(m) => f.write_str(m),
            AnalysisError::Internal(m) => write!(f, "internal: {m}"),
            AnalysisError::Cancelled { passes } => {
                write!(f, "cancelled after {passes} solver passes")
            }
        }
    }
}

/// One analyzed loop of a batch entry: its canonical fingerprint and the
/// (possibly shared) report.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Canonical fingerprint — the cache identity of this loop.
    pub fingerprint: Fingerprint,
    /// The analysis. `Arc`-shared with every other loop of the same
    /// fingerprint in the batch.
    pub report: Arc<AnalysisReport>,
}

/// Per-query effort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Loops answered from the memo cache.
    pub cache_hits: u64,
    /// Loops that had to be solved.
    pub cache_misses: u64,
    /// Solver iteration passes actually executed (misses only).
    pub solver_passes: u64,
    /// Solver node visits actually executed (misses only).
    pub node_visits: u64,
    /// Wall-clock of this query, in microseconds.
    pub micros: u64,
}

/// The result of analyzing one program of a batch. Results come back in
/// input order regardless of worker scheduling.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Index of the program in the input slice.
    pub index: usize,
    /// One report per loop of the (normalized) program, innermost first —
    /// the same order as [`arrayflow_analyses::analyze_nest`].
    pub loops: Vec<LoopReport>,
    /// First analysis error encountered, if any (loops after the failing
    /// one are still attempted).
    pub error: Option<AnalysisError>,
    /// Effort counters for this program.
    pub stats: QueryStats,
}

impl BatchResult {
    /// An empty result carrying an [`AnalysisError::Internal`] — what a
    /// program gets when the worker analyzing it panicked or died.
    fn internal_failure(index: usize, message: String) -> BatchResult {
        BatchResult {
            index,
            loops: Vec::new(),
            error: Some(AnalysisError::Internal(message)),
            stats: QueryStats::default(),
        }
    }
}

/// Aggregate engine statistics since construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Programs analyzed.
    pub programs: u64,
    /// Loops encountered (cache hits + misses).
    pub loops: u64,
    /// Cache counters (hits, misses, evictions, inserts).
    pub cache: CacheCounters,
    /// Solver iteration passes executed.
    pub solver_passes: u64,
    /// Solver node visits executed.
    pub node_visits: u64,
    /// Total busy wall-clock across workers, in microseconds.
    pub busy_micros: u64,
    /// Fingerprint-first lookups answered without any parse/normalize work.
    pub fingerprint_fast_hits: u64,
    /// Fingerprint-first lookups that missed both cache tiers.
    pub fingerprint_misses: u64,
}

impl EngineStats {
    /// Cache hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

impl std::fmt::Display for EngineStats {
    /// One-line human-readable summary, e.g.
    /// `42 programs, 84 loops, 63 from cache (75% hit rate), 21 solved in 63 passes / 504 visits, 1234 µs busy`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} programs, {} loops, {} from cache ({:.0}% hit rate), {} solved in {} passes / {} visits, {} µs busy",
            self.programs,
            self.loops,
            self.cache.hits,
            100.0 * self.hit_rate(),
            self.cache.misses,
            self.solver_passes,
            self.node_visits,
            self.busy_micros
        )
    }
}

/// The result of a delta re-analysis against an open session.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// The session the edit was applied to.
    pub session: u64,
    /// Canonical fingerprint of the loop *after* the edit.
    pub fingerprint: Fingerprint,
    /// The full report for the edited loop — byte-identical to what a
    /// fresh [`Engine::analyze_one`] of the edited source would produce.
    pub report: Arc<AnalysisReport>,
    /// True when the edit forced a full re-analysis.
    pub fallback: bool,
    /// Lattice columns re-solved by the worklist (0 on fallback).
    pub dirty_columns: usize,
    /// Total lattice columns across the four instances.
    pub total_columns: usize,
}

/// A concurrent, memoizing batch analysis engine over the array data flow
/// framework.
///
/// The engine owns a sharded cache keyed by canonical loop fingerprint
/// (see [`arrayflow_ir::canon`]) and problem selection. A batch of
/// programs is fanned out across a `std::thread` worker pool; within each
/// program, loops are analyzed innermost first, so by the time an
/// enclosing loop (whose flow graph summarizes its inner loops) is
/// solved, the inner loops' reports are already cached for the next
/// structurally identical nest in the stream.
///
/// ```
/// use arrayflow_engine::{Engine, EngineConfig};
///
/// let engine = Engine::new(EngineConfig { workers: 2, ..Default::default() });
/// let programs: Vec<_> = (0..4)
///     .map(|_| arrayflow_ir::parse_program(
///         "do i = 1, 100 A[i+2] := A[i] + x; end").unwrap())
///     .collect();
/// let results = engine.analyze_batch(&programs);
/// assert_eq!(results.len(), 4);
/// assert_eq!(results[0].loops[0].report.reuses.len(), 1);
/// // 4 structurally identical programs dedup onto one cache entry; at
/// // least 2 are hits (workers may race the very first solve).
/// assert!(engine.stats().cache.hits >= 2);
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cache: MemoCache,
    registry: Registry,
    ins: EngineInstruments,
    faults: Option<Arc<dyn FaultSurface>>,
    sessions: SessionStore,
}

/// The engine's registered instruments. Counters mirror the legacy
/// [`EngineStats`] fields; the histograms are the paper-facing pass-count
/// distributions and the engine-side phase timings.
#[derive(Debug, Clone)]
struct EngineInstruments {
    programs: Counter,
    loops: Counter,
    solver_passes: Counter,
    node_visits: Counter,
    busy_us: Counter,
    pass_reaching: Histogram,
    pass_available: Histogram,
    pass_busy: Histogram,
    pass_reaching_refs: Histogram,
    pass_custom: Histogram,
    phase_normalize: Histogram,
    phase_cache_get: Histogram,
    phase_solve: Histogram,
    phase_cache_insert: Histogram,
    worker_panics: Counter,
    fingerprint_fast_hits: Counter,
    fingerprint_misses: Counter,
    delta_requests: Counter,
    delta_fallbacks: Counter,
    sessions_open: Gauge,
}

impl EngineInstruments {
    fn registered(registry: &Registry) -> Self {
        let pass = |problem| {
            registry.histogram_with(
                "arrayflow_solver_passes",
                "solver passes to fixed point per cache-missed instance (paper bound: 3 must, 2 may)",
                &[("problem", problem)],
                &SOLVER_PASS_BUCKETS,
            )
        };
        let phase = |name| {
            registry.histogram_with(
                "arrayflow_phase_us",
                "per-phase wall-clock, microseconds",
                &[("phase", name)],
                &PHASE_BUCKETS_US,
            )
        };
        Self {
            programs: registry.counter("arrayflow_engine_programs_total", "programs analyzed"),
            loops: registry.counter(
                "arrayflow_engine_loops_total",
                "loops encountered (cache hits + misses)",
            ),
            solver_passes: registry.counter(
                "arrayflow_engine_solver_passes_total",
                "solver iteration passes executed (misses only)",
            ),
            node_visits: registry.counter(
                "arrayflow_engine_node_visits_total",
                "solver node visits executed (misses only)",
            ),
            busy_us: registry.counter(
                "arrayflow_engine_busy_us_total",
                "total busy wall-clock across workers, microseconds",
            ),
            pass_reaching: pass("reaching"),
            pass_available: pass("available"),
            pass_busy: pass("busy"),
            pass_reaching_refs: pass("reaching_refs"),
            pass_custom: pass("custom"),
            phase_normalize: phase("normalize"),
            phase_cache_get: phase("cache_get"),
            phase_solve: phase("solve"),
            phase_cache_insert: phase("cache_insert"),
            worker_panics: registry.counter(
                "arrayflow_worker_panics_total",
                "solver panics caught and converted to per-program internal errors",
            ),
            fingerprint_fast_hits: registry.counter(
                "arrayflow_fingerprint_fast_hits_total",
                "fingerprint-first lookups answered from cache without any parse or normalize work",
            ),
            fingerprint_misses: registry.counter(
                "arrayflow_fingerprint_misses_total",
                "fingerprint-first lookups that missed both cache tiers",
            ),
            delta_requests: registry.counter(
                "arrayflow_delta_requests_total",
                "single-statement delta re-analyses requested against open sessions",
            ),
            delta_fallbacks: registry.counter(
                "arrayflow_delta_fallbacks_total",
                "delta requests that fell back to a full re-analysis (structural edits)",
            ),
            sessions_open: registry.gauge(
                "arrayflow_sessions_open",
                "analysis sessions currently open",
            ),
        }
    }

    /// The pass-count histogram for a named framework instance.
    fn pass_histogram(&self, problem: &str) -> Option<&Histogram> {
        match problem {
            "reaching" => Some(&self.pass_reaching),
            "available" => Some(&self.pass_available),
            "busy" => Some(&self.pass_busy),
            "reaching_refs" => Some(&self.pass_reaching_refs),
            "custom" => Some(&self.pass_custom),
            _ => None,
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl Engine {
    /// Creates an engine with the given configuration, registering its
    /// instruments on a fresh private [`Registry`] (reachable via
    /// [`Engine::registry`]).
    pub fn new(config: EngineConfig) -> Self {
        Self::with_registry(config, &Registry::new())
    }

    /// Creates an engine whose instruments (and those of its memo cache)
    /// are registered on `registry` — the service passes its own registry
    /// here so one `metrics` scrape covers every layer.
    pub fn with_registry(config: EngineConfig, registry: &Registry) -> Self {
        let cache = MemoCache::with_policy_in(
            config.cache_shards,
            config.cache_capacity,
            config.eviction,
            registry,
        );
        let sessions = SessionStore::new(StoreConfig {
            capacity: config.session_capacity,
            ttl: (config.session_ttl_ms > 0)
                .then(|| std::time::Duration::from_millis(config.session_ttl_ms)),
        });
        Self {
            config,
            cache,
            registry: registry.clone(),
            ins: EngineInstruments::registered(registry),
            faults: None,
            sessions,
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The metrics registry the engine's instruments live on.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Attaches a persistence tier under the memo cache: memory misses
    /// fall through to it (tier hits are promoted), fresh reports are
    /// forwarded to it. Call before sharing the engine.
    pub fn set_second_tier(&mut self, tier: Arc<dyn SecondTier>) {
        self.cache.set_second_tier(tier);
    }

    /// Installs a fault surface on the solver seams (injected panics and
    /// artificial solve latency). Intended for chaos drills and tests;
    /// with no surface installed the seams cost one `None` check. Call
    /// before sharing the engine.
    pub fn set_fault_surface(&mut self, faults: Arc<dyn FaultSurface>) {
        self.faults = Some(faults);
    }

    /// Warm-start: seeds the memory cache with an already-persistent
    /// report *without* forwarding it back to the second tier.
    pub fn preload(&self, key: CacheKey, report: Arc<AnalysisReport>) {
        self.cache.preload(key, report);
    }

    /// Visits every cached report (unspecified order) — the export side
    /// of the warm-start round trip.
    pub fn for_each_cached(&self, f: impl FnMut(&CacheKey, &Arc<AnalysisReport>)) {
        self.cache.for_each(f);
    }

    /// Analyzes one program (normalizing a private copy first), answering
    /// every loop from the cache when possible. Uses the engine-wide
    /// problem selection and distance bound from [`EngineConfig`].
    pub fn analyze_one(&self, index: usize, program: &Program) -> BatchResult {
        self.analyze_with(
            index,
            program,
            self.config.problems,
            self.config.dep_max_distance,
        )
    }

    /// Like [`Engine::analyze_one`], but with a per-query problem selection
    /// and dependence distance bound. Both are part of the cache key, so
    /// queries with different selections coexist in the memo cache without
    /// interfering — this is what lets one shared engine serve callers with
    /// different needs (e.g. the analysis service, where each request names
    /// its own problems).
    ///
    /// The solve runs panic-isolated: a panicking solver (adversarial
    /// input, injected fault) is caught here, counted in
    /// `arrayflow_worker_panics_total`, and returned as a per-program
    /// [`AnalysisError::Internal`] — it cannot take down the batch, the
    /// worker thread, or a serving request.
    pub fn analyze_with(
        &self,
        index: usize,
        program: &Program,
        problems: ProblemSet,
        dep_max_distance: u64,
    ) -> BatchResult {
        self.analyze_with_ctrl(index, program, problems, dep_max_distance, None)
    }

    /// Like [`Engine::analyze_with`], but polls `should_stop` between
    /// solver passes. When the check fires the result carries
    /// [`AnalysisError::Cancelled`] with the wasted pass count; loops
    /// completed *before* the stop are cached normally (they are complete
    /// solutions), the interrupted loop leaves no trace in any cache
    /// tier. With `None` the result is identical to
    /// [`Engine::analyze_with`].
    pub fn analyze_with_ctrl(
        &self,
        index: usize,
        program: &Program,
        problems: ProblemSet,
        dep_max_distance: u64,
        should_stop: Option<arrayflow_core::StopCheck<'_>>,
    ) -> BatchResult {
        // The closure borrows `self` and `program` immutably; the caches
        // it touches guard their state behind their own locks, which a
        // panic in the (lock-free) solve phase cannot poison.
        match catch_unwind(AssertUnwindSafe(|| {
            self.analyze_with_inner(index, program, problems, dep_max_distance, should_stop)
        })) {
            Ok(result) => result,
            Err(payload) => {
                self.ins.worker_panics.inc();
                BatchResult::internal_failure(
                    index,
                    format!("solver panicked: {}", panic_message(payload.as_ref())),
                )
            }
        }
    }

    fn analyze_with_inner(
        &self,
        index: usize,
        program: &Program,
        problems: ProblemSet,
        dep_max_distance: u64,
        should_stop: Option<arrayflow_core::StopCheck<'_>>,
    ) -> BatchResult {
        let start = Instant::now();
        let mut stats = QueryStats::default();
        let mut error: Option<AnalysisError> = None;

        // Work on a private normalized copy: the framework requires
        // `do i = 1, UB` step 1, and renumbered statements make StmtIds in
        // reports deterministic.
        let mut p = program.clone();
        {
            let _span = observed_span("normalize", &self.ins.phase_normalize);
            arrayflow_ir::normalize(&mut p);
            p.renumber();
        }

        let mut loops = Vec::new();
        for l in loops_innermost_first(&p) {
            let fingerprint = fingerprint_loop(l, &p.symbols);
            let key = CacheKey {
                fingerprint,
                problems,
                dep_max_distance,
                custom: None,
            };
            let hit = {
                let _span = observed_span("cache_get", &self.ins.phase_cache_get);
                self.cache.get(&key)
            };
            let report = if let Some(hit) = hit {
                stats.cache_hits += 1;
                hit
            } else {
                stats.cache_misses += 1;
                let solved = {
                    let _span = observed_span("solve", &self.ins.phase_solve);
                    if let Some(faults) = &self.faults {
                        if let Some(delay) = faults.solve_latency() {
                            std::thread::sleep(delay);
                        }
                        if faults.solver_panic() {
                            panic!("injected solver fault");
                        }
                    }
                    AnalysisReport::of_loop_ctrl(
                        l,
                        &p.symbols,
                        problems,
                        dep_max_distance,
                        should_stop,
                    )
                };
                match solved {
                    Ok(r) => {
                        stats.solver_passes += r.solver_passes() as u64;
                        stats.node_visits += r.node_visits() as u64;
                        for (problem, s) in r.instance_stats() {
                            if let Some(h) = self.ins.pass_histogram(problem) {
                                h.observe(passes_to_fix(&s));
                            }
                        }
                        let r = Arc::new(r);
                        {
                            let _span = observed_span("cache_insert", &self.ins.phase_cache_insert);
                            self.cache.insert(key, Arc::clone(&r));
                        }
                        r
                    }
                    Err(arrayflow_analyses::AnalyzeError::Stopped { passes }) => {
                        // Wasted passes are real executed work — count them
                        // in the effort counters, but never in the pass
                        // histograms (those state the paper's bound over
                        // *completed* instances) and never in any cache.
                        stats.solver_passes += passes;
                        error.get_or_insert(AnalysisError::Cancelled { passes });
                        break;
                    }
                    Err(e) => {
                        error.get_or_insert_with(|| AnalysisError::Analysis(e.to_string()));
                        continue;
                    }
                }
            };
            loops.push(LoopReport {
                fingerprint,
                report,
            });
        }

        stats.micros = start.elapsed().as_micros() as u64;
        self.ins.programs.inc();
        self.ins.loops.add(stats.cache_hits + stats.cache_misses);
        self.ins.solver_passes.add(stats.solver_passes);
        self.ins.node_visits.add(stats.node_visits);
        self.ins.busy_us.add(stats.micros);

        BatchResult {
            index,
            loops,
            error,
            stats,
        }
    }

    /// When a wire-submitted spec names one of the canned instances, the
    /// canned singleton [`ProblemSet`] to delegate to — so an equivalent
    /// custom request shares the canned cache entry and produces a
    /// byte-identical report to the built-in verb.
    fn canned_equivalent(spec: CustomSpec) -> Option<ProblemSet> {
        use arrayflow_core::{Direction, Mode};
        let gk = (spec.gen_defs, spec.gen_uses, spec.kill_defs, spec.kill_uses);
        let fwd = spec.direction == Direction::Forward;
        let must = spec.mode == Mode::Must;
        let pick = |reaching, available, busy, reaching_refs| ProblemSet {
            reaching,
            available,
            busy,
            reaching_refs,
        };
        match (gk, fwd, must) {
            ((true, false, true, false), true, true) => Some(pick(true, false, false, false)),
            ((true, true, true, false), true, true) => Some(pick(false, true, false, false)),
            ((true, false, false, true), false, true) => Some(pick(false, false, true, false)),
            ((true, true, true, false), true, false) => Some(pick(false, false, false, true)),
            _ => None,
        }
    }

    /// Analyzes one program under a user-specified (G, K) problem — the
    /// engine half of the `custom` verb. The spec is part of the cache
    /// key ([`CacheKey::custom`]), so distinct specs over the same loop
    /// coexist in the memo cache and the persistent tier; a spec that
    /// names a canned instance delegates to [`Engine::analyze_with`] with
    /// the singleton selection, sharing the canned cache entry and
    /// producing a byte-identical report to the built-in verb.
    ///
    /// Every request increments
    /// `arrayflow_custom_requests_total{spec=...}` with the spec's
    /// canonical label. Panic isolation matches [`Engine::analyze_with`].
    pub fn analyze_custom(
        &self,
        index: usize,
        program: &Program,
        spec: CustomSpec,
        dep_max_distance: u64,
    ) -> BatchResult {
        self.analyze_custom_ctrl(index, program, spec, dep_max_distance, None)
    }

    /// [`Engine::analyze_custom`] with a cooperative stop check (see
    /// [`Engine::analyze_with_ctrl`]).
    pub fn analyze_custom_ctrl(
        &self,
        index: usize,
        program: &Program,
        spec: CustomSpec,
        dep_max_distance: u64,
        should_stop: Option<arrayflow_core::StopCheck<'_>>,
    ) -> BatchResult {
        self.registry
            .counter_with(
                "arrayflow_custom_requests_total",
                "custom (G, K) problems solved, by canonical spec label",
                &[("spec", &spec.label())],
            )
            .inc();
        if let Some(problems) = Self::canned_equivalent(spec) {
            return self.analyze_with_ctrl(index, program, problems, dep_max_distance, should_stop);
        }
        match catch_unwind(AssertUnwindSafe(|| {
            self.analyze_custom_inner(index, program, spec, dep_max_distance, should_stop)
        })) {
            Ok(result) => result,
            Err(payload) => {
                self.ins.worker_panics.inc();
                BatchResult::internal_failure(
                    index,
                    format!("solver panicked: {}", panic_message(payload.as_ref())),
                )
            }
        }
    }

    fn analyze_custom_inner(
        &self,
        index: usize,
        program: &Program,
        spec: CustomSpec,
        dep_max_distance: u64,
        should_stop: Option<arrayflow_core::StopCheck<'_>>,
    ) -> BatchResult {
        let start = Instant::now();
        let mut stats = QueryStats::default();
        let mut error: Option<AnalysisError> = None;

        let mut p = program.clone();
        {
            let _span = observed_span("normalize", &self.ins.phase_normalize);
            arrayflow_ir::normalize(&mut p);
            p.renumber();
        }

        let mut loops = Vec::new();
        for l in loops_innermost_first(&p) {
            let fingerprint = fingerprint_loop(l, &p.symbols);
            let key = CacheKey {
                fingerprint,
                problems: ProblemSet::NONE,
                dep_max_distance,
                custom: Some(spec),
            };
            let hit = {
                let _span = observed_span("cache_get", &self.ins.phase_cache_get);
                self.cache.get(&key)
            };
            let report = if let Some(hit) = hit {
                stats.cache_hits += 1;
                hit
            } else {
                stats.cache_misses += 1;
                let solved = {
                    let _span = observed_span("solve", &self.ins.phase_solve);
                    if let Some(faults) = &self.faults {
                        if let Some(delay) = faults.solve_latency() {
                            std::thread::sleep(delay);
                        }
                        if faults.solver_panic() {
                            panic!("injected solver fault");
                        }
                    }
                    AnalysisReport::of_custom_ctrl(
                        l,
                        &p.symbols,
                        spec,
                        dep_max_distance,
                        should_stop,
                    )
                };
                match solved {
                    Ok(r) => {
                        stats.solver_passes += r.solver_passes() as u64;
                        stats.node_visits += r.node_visits() as u64;
                        for (problem, s) in r.instance_stats() {
                            if let Some(h) = self.ins.pass_histogram(problem) {
                                h.observe(passes_to_fix(&s));
                            }
                        }
                        let r = Arc::new(r);
                        {
                            let _span = observed_span("cache_insert", &self.ins.phase_cache_insert);
                            self.cache.insert(key, Arc::clone(&r));
                        }
                        r
                    }
                    Err(arrayflow_analyses::AnalyzeError::Stopped { passes }) => {
                        stats.solver_passes += passes;
                        error.get_or_insert(AnalysisError::Cancelled { passes });
                        break;
                    }
                    Err(e) => {
                        error.get_or_insert_with(|| AnalysisError::Analysis(e.to_string()));
                        continue;
                    }
                }
            };
            loops.push(LoopReport {
                fingerprint,
                report,
            });
        }

        stats.micros = start.elapsed().as_micros() as u64;
        self.ins.programs.inc();
        self.ins.loops.add(stats.cache_hits + stats.cache_misses);
        self.ins.solver_passes.add(stats.solver_passes);
        self.ins.node_visits.add(stats.node_visits);
        self.ins.busy_us.add(stats.micros);

        BatchResult {
            index,
            loops,
            error,
            stats,
        }
    }

    /// The fingerprint-first fast path: probes the memo cache (and, on a
    /// memory miss, the persistent second tier, promoting a tier hit)
    /// for an already-analyzed loop — **before any parse or normalize
    /// work exists to skip**. This is what makes lookup-dominated
    /// traffic cost close to a cache probe: a client that precomputed
    /// the canonical fingerprint of a loop it has seen before gets the
    /// stored report without the server ever touching the DSL text.
    ///
    /// A hit counts in `arrayflow_fingerprint_fast_hits_total`, a miss
    /// in `arrayflow_fingerprint_misses_total`; callers fall back to
    /// full analysis (when they also have source) on `None`.
    pub fn analyze_by_fingerprint(
        &self,
        fingerprint: Fingerprint,
        problems: ProblemSet,
        dep_max_distance: u64,
    ) -> Option<Arc<AnalysisReport>> {
        let key = CacheKey {
            fingerprint,
            problems,
            dep_max_distance,
            custom: None,
        };
        let hit = {
            let _span = observed_span("cache_get", &self.ins.phase_cache_get);
            self.cache.get(&key)
        };
        match hit {
            Some(report) => {
                self.ins.fingerprint_fast_hits.inc();
                Some(report)
            }
            None => {
                self.ins.fingerprint_misses.inc();
                None
            }
        }
    }

    /// The custom-spec twin of [`Engine::analyze_by_fingerprint`]: probes
    /// the cache tiers for a `(fingerprint, spec)` pair. Specs naming a
    /// canned instance probe the canned key they delegate to, so a custom
    /// probe hits entries the built-in verb populated (and vice versa).
    pub fn analyze_custom_by_fingerprint(
        &self,
        fingerprint: Fingerprint,
        spec: CustomSpec,
        dep_max_distance: u64,
    ) -> Option<Arc<AnalysisReport>> {
        match Self::canned_equivalent(spec) {
            Some(problems) => self.analyze_by_fingerprint(fingerprint, problems, dep_max_distance),
            None => {
                let key = CacheKey {
                    fingerprint,
                    problems: ProblemSet::NONE,
                    dep_max_distance,
                    custom: Some(spec),
                };
                let hit = {
                    let _span = observed_span("cache_get", &self.ins.phase_cache_get);
                    self.cache.get(&key)
                };
                match hit {
                    Some(report) => {
                        self.ins.fingerprint_fast_hits.inc();
                        Some(report)
                    }
                    None => {
                        self.ins.fingerprint_misses.inc();
                        None
                    }
                }
            }
        }
    }

    /// Opens an interactive analysis session: fully analyzes the program
    /// once and retains the converged lattice state so subsequent
    /// [`Engine::analyze_delta`] calls can re-converge from it instead of
    /// starting over. Returns the session id and the initial report (also
    /// inserted into the memo cache under [`ProblemSet::ALL`]).
    ///
    /// Sessions require a single normalized loop — the shape the
    /// incremental solver is defined over; other programs get an
    /// [`AnalysisError::Analysis`].
    pub fn open_session(
        &self,
        program: &Program,
    ) -> Result<(u64, Arc<AnalysisReport>), AnalysisError> {
        self.open_session_ctrl(program, None)
    }

    /// [`Engine::open_session`] with a cooperative stop check (see
    /// [`Engine::analyze_with_ctrl`]): a cancelled open yields
    /// [`AnalysisError::Cancelled`] before any session, cache entry or
    /// memoization exists.
    pub fn open_session_ctrl(
        &self,
        program: &Program,
        should_stop: Option<arrayflow_core::StopCheck<'_>>,
    ) -> Result<(u64, Arc<AnalysisReport>), AnalysisError> {
        let session = Session::open_ctrl(program.clone(), should_stop).map_err(|e| match e {
            arrayflow_analyses::AnalyzeError::Stopped { passes } => {
                AnalysisError::Cancelled { passes }
            }
            e => AnalysisError::Analysis(e.to_string()),
        })?;
        let report = Arc::new(AnalysisReport::of_analysis(
            session.fingerprint(),
            session.analysis(),
            ProblemSet::ALL,
            self.config.dep_max_distance,
        ));
        self.memoize_session_report(&report);
        let id = self.sessions.insert(session);
        self.ins
            .sessions_open
            .set(self.sessions.stats().open as u64);
        Ok((id, Arc::clone(&report)))
    }

    /// Applies one single-statement edit to an open session and
    /// re-converges, returning a report byte-identical to a fresh analysis
    /// of the edited source. Unknown, evicted or expired sessions are an
    /// [`AnalysisError::Analysis`] — the client reopens and retries.
    ///
    /// Counts every request in `arrayflow_delta_requests_total` and full
    /// re-analysis fallbacks in `arrayflow_delta_fallbacks_total`; the
    /// per-instance pass histograms observe delta-path solves exactly as
    /// they do batch solves (the reconstructed statistics respect the
    /// paper's pass bounds, so the histogram invariants hold).
    pub fn analyze_delta(&self, session: u64, edit: &Edit) -> Result<DeltaReport, AnalysisError> {
        self.analyze_delta_ctrl(session, edit, None)
    }

    /// [`Engine::analyze_delta`] with a cooperative stop check (see
    /// [`Engine::analyze_with_ctrl`]): a cancelled delta yields
    /// [`AnalysisError::Cancelled`] and leaves the session byte-identical
    /// to its pre-edit state — nothing is memoized, no delta is recorded.
    pub fn analyze_delta_ctrl(
        &self,
        session: u64,
        edit: &Edit,
        should_stop: Option<arrayflow_core::StopCheck<'_>>,
    ) -> Result<DeltaReport, AnalysisError> {
        self.ins.delta_requests.inc();
        let dep_max_distance = self.config.dep_max_distance;
        let applied = catch_unwind(AssertUnwindSafe(|| {
            self.sessions.with_session(session, |s| {
                s.apply_ctrl(edit, should_stop).map(|outcome| {
                    let report = AnalysisReport::of_analysis(
                        s.fingerprint(),
                        s.analysis(),
                        ProblemSet::ALL,
                        dep_max_distance,
                    );
                    (outcome, report)
                })
            })
        }));
        let applied = match applied {
            Ok(a) => a,
            Err(payload) => {
                self.ins.worker_panics.inc();
                return Err(AnalysisError::Internal(format!(
                    "delta panicked: {}",
                    panic_message(payload.as_ref())
                )));
            }
        };
        let Some(applied) = applied else {
            return Err(AnalysisError::SessionLost(format!(
                "unknown or expired session {session}"
            )));
        };
        let (outcome, report) = applied.map_err(|e| match e {
            arrayflow_incremental::DeltaError::Analyze(
                arrayflow_analyses::AnalyzeError::Stopped { passes },
            ) => AnalysisError::Cancelled { passes },
            e => AnalysisError::Analysis(e.to_string()),
        })?;
        self.sessions.record_delta(outcome.fallback);
        if outcome.fallback {
            self.ins.delta_fallbacks.inc();
        }
        for (problem, s) in report.instance_stats() {
            if let Some(h) = self.ins.pass_histogram(problem) {
                h.observe(passes_to_fix(&s));
            }
        }
        let report = Arc::new(report);
        self.memoize_session_report(&report);
        Ok(DeltaReport {
            session,
            fingerprint: report.fingerprint,
            report,
            fallback: outcome.fallback,
            dirty_columns: outcome.dirty_columns,
            total_columns: outcome.total_columns,
        })
    }

    /// Closes a session, returning whether it was open.
    pub fn close_session(&self, session: u64) -> bool {
        let hit = self.sessions.remove(session);
        self.ins
            .sessions_open
            .set(self.sessions.stats().open as u64);
        hit
    }

    /// Counters of the session store (open sessions, evictions, delta
    /// hit/fallback totals) — the `sessions` section of the service stats.
    pub fn session_stats(&self) -> SessionStats {
        let stats = self.sessions.stats();
        self.ins.sessions_open.set(stats.open as u64);
        stats
    }

    /// Session-path reports are computed for [`ProblemSet::ALL`]; park
    /// them in the memo cache so batch queries for the same loop hit.
    fn memoize_session_report(&self, report: &Arc<AnalysisReport>) {
        let key = CacheKey {
            fingerprint: report.fingerprint,
            problems: ProblemSet::ALL,
            dep_max_distance: report.dep_max_distance,
            custom: None,
        };
        let _span = observed_span("cache_insert", &self.ins.phase_cache_insert);
        self.cache.insert(key, Arc::clone(report));
    }

    /// Analyzes a batch of programs across the worker pool, returning
    /// results in input order.
    ///
    /// Scheduling is work-stealing over a shared index: each worker claims
    /// the next unanalyzed program. Reports are pure functions of loop
    /// structure, so results are byte-identical for every worker count —
    /// only throughput changes.
    pub fn analyze_batch(&self, programs: &[Program]) -> Vec<BatchResult> {
        let workers = self.config.effective_workers().min(programs.len().max(1));
        if workers <= 1 {
            return programs
                .iter()
                .enumerate()
                .map(|(i, p)| self.analyze_one(i, p))
                .collect();
        }

        // Results flow back over a channel rather than a shared
        // `Mutex<Vec<_>>`: a worker that dies mid-batch (however
        // `analyze_one`'s panic isolation is bypassed) can neither poison
        // the collector nor deadlock it — its claimed-but-unsent indices
        // simply stay empty and are filled in with per-program internal
        // errors below, so every other program still gets its result.
        let next = AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel::<BatchResult>();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= programs.len() {
                        break;
                    }
                    let _ = tx.send(self.analyze_one(i, &programs[i]));
                });
            }
        });
        drop(tx);

        let mut slots: Vec<Option<BatchResult>> = (0..programs.len()).map(|_| None).collect();
        for r in rx {
            let i = r.index;
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| {
                    BatchResult::internal_failure(
                        i,
                        "worker died before returning a result".to_string(),
                    )
                })
            })
            .collect()
    }

    /// Aggregate statistics since construction.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            programs: self.ins.programs.get(),
            loops: self.ins.loops.get(),
            cache: self.cache.counters(),
            solver_passes: self.ins.solver_passes.get(),
            node_visits: self.ins.node_visits.get(),
            busy_micros: self.ins.busy_us.get(),
            fingerprint_fast_hits: self.ins.fingerprint_fast_hits.get(),
            fingerprint_misses: self.ins.fingerprint_misses.get(),
        }
    }

    /// Number of reports currently cached.
    pub fn cached_reports(&self) -> usize {
        self.cache.len()
    }
}
