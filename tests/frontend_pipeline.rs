//! End-to-end front end: raw Fortran-ish loops (non-unit strides, shifted
//! bounds, derived index variables) through `prepare` (normalization +
//! induction-variable removal) into the analysis and the optimizers —
//! validating both the analysis results and semantic preservation.

use arrayflow::analyses::analyze_loop;
use arrayflow::ir::interp::run_with;
use arrayflow::ir::{parse_program, Env, Program, Stmt};
use arrayflow::opt::eliminate_redundant_loads;
use arrayflow::prepare;

fn seeded(p: &Program) -> Env {
    run_with(p, |e| {
        for a in p.symbols.array_ids() {
            for k in -64..600 {
                e.set_elem(a, vec![k], (k * 11 + 3) % 53);
            }
        }
    })
    .unwrap()
}

/// The loop after `prepare` (the program may carry pre/post scalar code).
fn main_loop(p: &Program) -> &arrayflow::ir::Loop {
    p.body
        .iter()
        .find_map(|s| match s {
            Stmt::Do(l) => Some(l),
            _ => None,
        })
        .expect("a loop remains")
}

#[test]
fn strided_loop_becomes_analyzable() {
    // do i = 2, 200, 2: after normalization the subscripts are affine in
    // the new IV and the distance-1 recurrence (in normalized iterations)
    // is found.
    let mut p = parse_program("do i = 2, 200, 2 A[i+2] := A[i] + 1; end").unwrap();
    let orig = p.clone();
    let (normalized, _) = prepare(&mut p);
    assert_eq!(normalized, 1);
    assert_eq!(seeded(&orig).array_state(), seeded(&p).array_state());

    let single = Program {
        symbols: p.symbols.clone(),
        body: vec![Stmt::Do(main_loop(&p).clone())],
    };
    let a = analyze_loop(&single).unwrap();
    let reuses = a.reuse_pairs();
    assert!(
        reuses.iter().any(|r| r.gen_is_def && r.distance == 1),
        "stride-2 A[i+2]←A[i] is distance 1 after normalization: {reuses:?}"
    );
}

#[test]
fn derived_index_variable_becomes_affine() {
    // A classic hand-strength-reduced loop: t walks by 3 per iteration.
    let mut p = parse_program(
        "t := 0;
         do i = 1, 100
           t := t + 3;
           B[t] := B[t - 3] + 1;
         end",
    )
    .unwrap();
    let orig = p.clone();
    let (_, removed) = prepare(&mut p);
    assert_eq!(removed.len(), 1);
    let e1 = seeded(&orig);
    let e2 = seeded(&p);
    assert_eq!(e1.array_state(), e2.array_state());

    let single = Program {
        symbols: p.symbols.clone(),
        body: vec![Stmt::Do(main_loop(&p).clone())],
    };
    let a = analyze_loop(&single).unwrap();
    // B[3i] := B[3i−3]: a distance-1 recurrence.
    assert!(
        a.reuse_pairs().iter().any(|r| r.distance == 1),
        "{:?}",
        a.reuse_pairs()
    );
}

#[test]
fn prepared_loop_feeds_the_optimizers() {
    let mut p = parse_program(
        "t := 4;
         do i = 1, 150
           t := t + 1;
           C[t] := C[t - 1] * 2;
         end",
    )
    .unwrap();
    prepare(&mut p);
    let single = Program {
        symbols: p.symbols.clone(),
        body: vec![Stmt::Do(main_loop(&p).clone())],
    };
    let r = eliminate_redundant_loads(&single).unwrap();
    assert!(
        r.replaced_uses >= 1,
        "scalar replacement fires post-prepare"
    );
    let e1 = seeded(&single);
    let e2 = seeded(&r.program);
    for arr in single.symbols.array_ids() {
        assert_eq!(e1.array_state().get(&arr), e2.array_state().get(&arr));
    }
    // And the loads really disappear: C[t-1] was one load per iteration.
    assert!(e2.stats.array_reads < e1.stats.array_reads / 10);
}

#[test]
fn downward_strided_loop_roundtrips() {
    let mut p = parse_program("do i = 99, 1, -3 A[i] := A[i+3] + 1; end").unwrap();
    let orig = p.clone();
    let (normalized, _) = prepare(&mut p);
    assert_eq!(normalized, 1);
    assert_eq!(seeded(&orig).array_state(), seeded(&p).array_state());
}
