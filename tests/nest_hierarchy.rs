//! Hierarchical analysis of loop nests (paper §3.2): inner loops are
//! summarized when an outer loop is analyzed — summary nodes may generate
//! outer-IV references and conservatively kill what they write.

use arrayflow::analyses::{analyze_nest, nest_distance_vectors, nest_sites};
use arrayflow::core::Dist;
use arrayflow::ir::parse_program;

#[test]
fn summary_kill_blocks_outer_reuse() {
    // The inner loop rewrites B; the outer-level recurrence on B must be
    // conservatively dropped (the paper's "kills all instances" rule).
    let p = parse_program(
        "do j = 1, 100
           B[j+1] := B[j] + 1;
           do i = 1, 50
             B[i] := A[i] + j;
           end
         end",
    )
    .unwrap();
    let analyses = analyze_nest(&p).unwrap();
    let outer = analyses
        .iter()
        .find(|a| a.symbols.var_name(a.graph.iv) == "j")
        .unwrap();
    assert!(
        outer
            .reuse_pairs()
            .iter()
            .all(|r| outer.site_text(r.use_site) != "B[j]"),
        "the summary kill must block the B[j+1] → B[j] reuse: {:?}",
        outer.reuse_pairs()
    );
}

#[test]
fn summary_on_disjoint_array_preserves_outer_reuse() {
    // The inner loop touches only C — the outer B recurrence survives.
    let p = parse_program(
        "do j = 1, 100
           B[j+1] := B[j] + 1;
           do i = 1, 50
             C[i] := C[i] + j;
           end
         end",
    )
    .unwrap();
    let analyses = analyze_nest(&p).unwrap();
    let outer = analyses
        .iter()
        .find(|a| a.symbols.var_name(a.graph.iv) == "j")
        .unwrap();
    assert!(
        outer
            .reuse_pairs()
            .iter()
            .any(|r| r.gen_is_def && r.distance == 1),
        "{:?}",
        outer.reuse_pairs()
    );
}

#[test]
fn summary_generates_outer_iv_references() {
    // D[j] inside the inner loop is subscripted by the *outer* IV only:
    // it generates for the j-analysis (paper §3.2: "G[l₁] contains only
    // references whose subscripts are functions of the outer induction
    // variable").
    let p = parse_program(
        "do j = 1, 100
           do i = 1, 50
             D[j] := D[j] + A[i];
           end
           s := D[j-1] + s;
         end",
    )
    .unwrap();
    let analyses = analyze_nest(&p).unwrap();
    let outer = analyses
        .iter()
        .find(|a| a.symbols.var_name(a.graph.iv) == "j")
        .unwrap();
    // D[j] written in iteration j−1 is what D[j−1] reads — but D[j] is
    // rewritten (only at the same location) each iteration… for the outer
    // analysis D[j] kills only distance-0 instances of itself (same-node
    // post kill in summaries is conservative), so check the raw solution:
    // the D[j] generator must at least reach the following statement.
    let d_gen = outer
        .available
        .built
        .spec
        .gens
        .iter()
        .find(|g| outer.site_text_of(g) == "D[j]" && g.is_def);
    assert!(d_gen.is_some(), "summary contributes the D[j] generator");
    // And its instances reach the use node at distance ≥ 1 unless the
    // conservative summary post-kill suppressed it — either way the
    // solution is sound; here the subscripts are identical so the exact
    // kill applies: distance 0 only at the summary, aged to 1 at the use.
    let g = d_gen.unwrap();
    let use_node = outer
        .sites
        .iter()
        .find(|s| !s.is_def && outer.site_text_of_ref(&s.aref) == "D[j - 1]")
        .unwrap()
        .node;
    let v = outer.available.before(use_node, g.id);
    assert!(v >= Dist::Fin(0), "solution present: {v}");
}

#[test]
fn three_deep_nest_analyzes_every_level() {
    let p = parse_program(
        "do k = 1, 10
           do j = 1, 10
             do i = 1, 10
               T[i+1, j, k] := T[i, j, k] + 1;
             end
           end
         end",
    )
    .unwrap();
    let analyses = analyze_nest(&p).unwrap();
    assert_eq!(analyses.len(), 3);
    // The i-level sees the distance-1 recurrence; j and k levels see the
    // conservative summary (no constant-distance reuse in j or k alone).
    let by_iv = |name: &str| {
        analyses
            .iter()
            .find(|a| a.symbols.var_name(a.graph.iv) == name)
            .unwrap()
    };
    assert!(by_iv("i").reuse_pairs().iter().any(|r| r.distance == 1));
    assert!(by_iv("j").reuse_pairs().is_empty());
    assert!(by_iv("k").reuse_pairs().is_empty());
    // The distance-vector extension summarizes the whole nest: (0, 0, 1).
    let (_, sites) = nest_sites(&p).unwrap();
    let vectors: Vec<_> = nest_distance_vectors(&p)
        .unwrap()
        .into_iter()
        .filter(|d| sites[d.src].is_def)
        .map(|d| d.distances)
        .collect();
    assert_eq!(vectors, vec![vec![0, 0, 1]]);
}

#[test]
fn pass_bounds_hold_with_summaries() {
    let p = parse_program(
        "do j = 1, 100
           A[j+2] := A[j] * 2;
           do i = 1, 20
             C[i] := C[i] + A[j];
           end
           B[j] := A[j+1];
         end",
    )
    .unwrap();
    for a in analyze_nest(&p).unwrap() {
        for inst in [&a.reaching, &a.available, &a.busy, &a.reaching_refs] {
            assert!(inst.sol.stats.changing_passes <= 2, "{:?}", inst.sol.stats);
        }
    }
}

#[test]
fn outer_reuse_across_a_harmless_summary() {
    // Fig. 1-style outer recurrence with an inner loop between generator
    // and use that does not touch A: the A[j+2] → A[j+1] distance-1 reuse
    // must survive the summary node.
    let p = parse_program(
        "do j = 1, 100
           A[j+2] := A[j] * 2;
           do i = 1, 20
             C[i] := C[i] + A[j];
           end
           B[j] := A[j+1];
         end",
    )
    .unwrap();
    let analyses = analyze_nest(&p).unwrap();
    let outer = analyses
        .iter()
        .find(|a| a.symbols.var_name(a.graph.iv) == "j")
        .unwrap();
    assert!(
        outer.reuse_pairs().iter().any(|r| {
            r.gen_is_def
                && outer.site_text(r.gen_site) == "A[j + 2]"
                && outer.site_text(r.use_site) == "A[j + 1]"
                && r.distance == 1
        }),
        "{:?}",
        outer
            .reuse_pairs()
            .iter()
            .map(|r| (
                outer.site_text(r.gen_site),
                outer.site_text(r.use_site),
                r.distance
            ))
            .collect::<Vec<_>>()
    );
}
