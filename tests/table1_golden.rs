//! E1: exact reproduction of the paper's Table 1 — the must-reaching
//! definitions tuples for the Fig. 1 loop, after the initialization pass
//! and after each of the two iteration passes.

use arrayflow::analyses::report::render_table1;
use arrayflow::workloads::fig1;

#[test]
fn table1_full_trace_matches_the_paper() {
    let p = fig1(None);
    let table = render_table1(&p).unwrap();
    println!("{table}");

    // The trace has the initialization snapshot, two changing passes, and
    // one confirming pass.
    assert!(table.contains("(i) initialization pass"));
    assert!(table.contains("(ii) pass 1"));
    assert!(table.contains("(ii) pass 2"));

    // Spot-check the exact tuples from the paper (our graph adds an entry
    // and a test node; the four definitions are C[i+2], B[2i], C[i], B[i]
    // at nodes n1, n2, n4, n5, exit at n6).
    let lines: Vec<&str> = table.lines().collect();
    let section = |title: &str| -> Vec<&str> {
        let start = lines
            .iter()
            .position(|l| l.contains(title))
            .unwrap_or_else(|| panic!("{title} missing"));
        lines[start + 1..start + 8].to_vec()
    };

    // Initialization pass (Table 1 (i)):
    let init = section("(i) initialization pass");
    // paper IN[1] = (⊥,⊥,⊥,⊥), OUT[1] = (⊤,⊥,⊥,⊥) — our n1
    assert!(init[1].contains("IN [n1] (⊥, ⊥, ⊥, ⊥)"), "{}", init[1]);
    assert!(init[1].contains("OUT[n1] (⊤, ⊥, ⊥, ⊥)"), "{}", init[1]);
    // paper IN[2] = (⊤,⊥,⊥,⊥), OUT[2] = (⊤,⊤,⊥,⊥) — our n2
    assert!(init[2].contains("IN [n2] (⊤, ⊥, ⊥, ⊥)"), "{}", init[2]);
    assert!(init[2].contains("OUT[n2] (⊤, ⊤, ⊥, ⊥)"), "{}", init[2]);
    // paper node 3 (guarded assign) — our n4: IN (⊤,⊤,⊥,⊥), OUT (⊤,⊤,⊤,⊥)
    assert!(init[4].contains("IN [n4] (⊤, ⊤, ⊥, ⊥)"), "{}", init[4]);
    assert!(init[4].contains("OUT[n4] (⊤, ⊤, ⊤, ⊥)"), "{}", init[4]);
    // paper node 4 — our n5: IN (⊤,⊤,⊥,⊥), OUT (⊤,⊤,⊥,⊤)
    assert!(init[5].contains("IN [n5] (⊤, ⊤, ⊥, ⊥)"), "{}", init[5]);
    assert!(init[5].contains("OUT[n5] (⊤, ⊤, ⊥, ⊤)"), "{}", init[5]);
    // paper node 5 (exit) — our n6: OUT = (⊤,⊤,⊥,⊤)
    assert!(init[6].contains("OUT[n6] (⊤, ⊤, ⊥, ⊤)"), "{}", init[6]);

    // Pass 1 (Table 1 (ii), first column):
    let p1 = section("(ii) pass 1");
    assert!(p1[1].contains("IN [n1] (⊤, ⊤, ⊥, ⊤)"), "{}", p1[1]);
    assert!(p1[4].contains("OUT[n4] (1, ⊤, 0, ⊤)"), "{}", p1[4]);
    assert!(p1[5].contains("IN [n5] (1, ⊤, ⊥, ⊤)"), "{}", p1[5]);
    assert!(p1[5].contains("OUT[n5] (1, 0, ⊥, ⊤)"), "{}", p1[5]);
    assert!(p1[6].contains("OUT[n6] (2, 1, ⊥, ⊤)"), "{}", p1[6]);

    // Pass 2 (Table 1 (ii), second column — the fixed point):
    let p2 = section("(ii) pass 2");
    assert!(p2[1].contains("IN [n1] (2, 1, ⊥, ⊤)"), "{}", p2[1]);
    assert!(p2[1].contains("OUT[n1] (2, 1, ⊥, ⊤)"), "{}", p2[1]);
    assert!(p2[2].contains("IN [n2] (2, 1, ⊥, ⊤)"), "{}", p2[2]);
    assert!(p2[4].contains("IN [n4] (2, 1, ⊥, ⊤)"), "{}", p2[4]);
    assert!(p2[4].contains("OUT[n4] (1, 1, 0, ⊤)"), "{}", p2[4]);
    assert!(p2[5].contains("IN [n5] (1, 1, ⊥, ⊤)"), "{}", p2[5]);
    assert!(p2[5].contains("OUT[n5] (1, 0, ⊥, ⊤)"), "{}", p2[5]);
    assert!(p2[6].contains("IN [n6] (1, 0, ⊥, ⊤)"), "{}", p2[6]);
    assert!(p2[6].contains("OUT[n6] (2, 1, ⊥, ⊤)"), "{}", p2[6]);
}

#[test]
fn section_3_5_conclusions_hold() {
    // "The uses of C[i] in nodes 1 and 2 reuse the value computed by
    //  definition C[i+2] two iterations earlier … the reference B[i−1] uses
    //  the value computed in node 4 one iteration earlier … the reference
    //  to C[i+1] uses the value computed by C[i+2] one iteration earlier."
    let p = fig1(None);
    let a = arrayflow::analyses::analyze_loop(&p).unwrap();
    let reuses = a.reuse_pairs();
    let def_reuses: Vec<(String, String, u64)> = reuses
        .iter()
        .filter(|r| r.gen_is_def)
        .map(|r| (a.site_text(r.gen_site), a.site_text(r.use_site), r.distance))
        .collect();
    for expected in [
        ("C[i + 2]", "C[i]", 2),
        ("B[i]", "B[i - 1]", 1),
        ("C[i + 2]", "C[i + 1]", 1),
    ] {
        assert!(
            def_reuses
                .iter()
                .any(|(g, u, d)| g == expected.0 && u == expected.1 && *d == expected.2),
            "missing {expected:?} in {def_reuses:?}"
        );
    }
}
