//! E7 property: the paper's efficiency theorem. On every structured loop,
//! the fixed point of a must-problem is reached after the initialization
//! pass plus two iteration passes (3·N node visits), and of a may-problem
//! after two passes — so the bounded solver that runs *exactly* that
//! schedule must agree with the run-to-fixpoint solver.

use arrayflow::analyses::{build_spec, enumerate_sites, GK};
use arrayflow::core::{solve, solve_bounded, Direction, Mode};
use arrayflow::graph::build_loop_graph;
use arrayflow::workloads::{all_kernels, random_loop, LoopShape};
use arrayflow_ir::Program;

fn check_all_instances(p: &Program, tag: &str) {
    let l = p.sole_loop().expect("single loop");
    let graph = build_loop_graph(l);
    let (sites, _) = enumerate_sites(l, &graph, &p.symbols);
    let cases = [
        (
            "reaching",
            GK::REACHING_DEFS,
            Direction::Forward,
            Mode::Must,
        ),
        ("available", GK::AVAILABLE, Direction::Forward, Mode::Must),
        ("busy", GK::BUSY_STORES, Direction::Backward, Mode::Must),
        (
            "reachrefs",
            GK::REACHING_REFS,
            Direction::Forward,
            Mode::May,
        ),
    ];
    for (name, gk, dir, mode) in cases {
        let built = build_spec(&sites, gk, dir, mode);
        let full = solve(&graph, &built.spec);
        let bounded = solve_bounded(&graph, &built.spec);
        assert_eq!(
            full.before, bounded.before,
            "{tag}/{name}: bounded IN differs"
        );
        assert_eq!(
            full.after, bounded.after,
            "{tag}/{name}: bounded OUT differs"
        );
        assert!(
            full.stats.changing_passes <= 2,
            "{tag}/{name}: {:?}",
            full.stats
        );
        match mode {
            Mode::Must => assert_eq!(full.stats.init_visits, graph.len(), "{tag}/{name}"),
            Mode::May => assert_eq!(full.stats.init_visits, 0, "{tag}/{name}"),
        }
    }
}

#[test]
fn kernels_satisfy_the_pass_bounds() {
    for (name, p) in all_kernels(100) {
        check_all_instances(&p, name);
    }
}

#[test]
fn random_loops_satisfy_the_pass_bounds() {
    for seed in 0..60 {
        let p = random_loop(&LoopShape::default(), seed);
        check_all_instances(&p, &format!("seed{seed}"));
    }
}

#[test]
fn larger_random_loops_satisfy_the_pass_bounds() {
    let shapes = [
        LoopShape {
            stmts: 30,
            arrays: 5,
            cond_pct: 40,
            ..LoopShape::default()
        },
        LoopShape {
            stmts: 60,
            arrays: 2,
            cond_pct: 10,
            max_offset: 8,
            ..LoopShape::default()
        },
        LoopShape {
            stmts: 15,
            arrays: 1,
            cond_pct: 60,
            max_coef: 3,
            ..LoopShape::default()
        },
    ];
    for (k, shape) in shapes.iter().enumerate() {
        for seed in 0..12 {
            let p = random_loop(shape, 1000 + seed);
            check_all_instances(&p, &format!("shape{k}/seed{seed}"));
        }
    }
}

#[test]
fn may_solution_dominates_must_solution() {
    // May-reaching-references is an overestimate: for the common (G, K)
    // selection it must cover at least what the must-version covers.
    for seed in 0..30 {
        let p = random_loop(&LoopShape::default(), 77 + seed);
        let l = p.sole_loop().unwrap();
        let graph = build_loop_graph(l);
        let (sites, _) = enumerate_sites(l, &graph, &p.symbols);
        let must = solve(
            &graph,
            &build_spec(&sites, GK::AVAILABLE, Direction::Forward, Mode::Must).spec,
        );
        let may = solve(
            &graph,
            &build_spec(&sites, GK::REACHING_REFS, Direction::Forward, Mode::May).spec,
        );
        for n in 0..graph.len() {
            for d in 0..must.before[n].len() {
                assert!(
                    may.before[n][d] >= must.before[n][d],
                    "seed {seed}: node {n} ref {d}: may {} < must {}",
                    may.before[n][d],
                    must.before[n][d]
                );
            }
        }
    }
}
