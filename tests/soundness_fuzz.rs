//! Dynamic soundness fuzzing: analysis facts and transformations are
//! checked against actual executions of seeded random loops.
//!
//! * every reported must-reuse pair is validated by a tracing interpreter
//!   that records, per array element, which site wrote/read it last and in
//!   which iteration;
//! * every optimization (scalar replacement, store elimination, unrolling,
//!   register pipelining) must leave the final array state unchanged.

use std::collections::HashMap;

use arrayflow::analyses::analyze_loop;
use arrayflow::machine::{compile, compile_with, compile_with_style, Machine, PipelineStyle};
use arrayflow::opt::{
    allocate, eliminate_redundant_loads, eliminate_redundant_stores, unroll, PipelineConfig,
};
use arrayflow::workloads::{random_loop, LoopShape};
use arrayflow_ir::interp::run_with;
use arrayflow_ir::stmt::StmtId;
use arrayflow_ir::{Cond, Env, Expr, LValue, Program, Stmt};

fn seed_env(p: &Program, e: &mut Env) {
    for a in p.symbols.array_ids() {
        for k in -64..1200 {
            e.set_elem(a, vec![k], (k * 31 + 5) % 97);
        }
    }
    for v in p.symbols.var_ids() {
        e.set_scalar(v, (v.0 as i64 % 7) - 2);
    }
}

fn final_state(p: &Program) -> Env {
    run_with(p, |e| seed_env(p, e)).unwrap()
}

fn assert_same_arrays(orig: &Program, opt: &Program, tag: &str) {
    let e1 = final_state(orig);
    let e2 = final_state(opt);
    for a in orig.symbols.array_ids() {
        assert_eq!(
            e1.array_state().get(&a),
            e2.array_state().get(&a),
            "{tag}: array {} differs\n--- original ---\n{}\n--- optimized ---\n{}",
            orig.array_name(a),
            arrayflow_ir::pretty::print_program(orig),
            arrayflow_ir::pretty::print_program(opt)
        );
    }
}

#[test]
fn transformations_preserve_semantics_on_random_loops() {
    let shape = LoopShape {
        stmts: 10,
        arrays: 3,
        cond_pct: 35,
        max_offset: 5,
        max_coef: 2,
        ub: 60,
    };
    for seed in 0..40 {
        let p = random_loop(&shape, 31_000 + seed);

        let le = eliminate_redundant_loads(&p).unwrap();
        assert_same_arrays(&p, &le.program, &format!("load_elim seed {seed}"));

        let se = eliminate_redundant_stores(&p).unwrap();
        assert_same_arrays(&p, &se.program, &format!("store_elim seed {seed}"));

        for f in [2, 3, 4] {
            let u = unroll(&p, f).unwrap();
            assert_same_arrays(&p, &u, &format!("unroll x{f} seed {seed}"));
        }
    }
}

#[test]
fn pipelined_code_matches_conventional_code_on_random_loops() {
    let shape = LoopShape {
        stmts: 8,
        arrays: 2,
        cond_pct: 30,
        max_offset: 4,
        max_coef: 2,
        ub: 50,
    };
    for seed in 0..40 {
        let p = random_loop(&shape, 52_000 + seed);
        let analysis = analyze_loop(&p).unwrap();
        let alloc = allocate(&analysis, &PipelineConfig::default());

        let conv = compile(&p).unwrap();
        let pipe = compile_with(&p, &alloc.plan).unwrap();
        let mut m1 = Machine::new();
        let mut m2 = Machine::new();
        for (m, c) in [(&mut m1, &conv), (&mut m2, &pipe)] {
            for a in p.symbols.array_ids() {
                for k in -64..600 {
                    m.set_mem(a, k, (k * 17 + 3) % 89);
                }
            }
            for v in p.symbols.var_ids() {
                m.set_reg(c.scalar_regs[&v], (v.0 as i64 % 7) - 2);
            }
        }
        m1.run(&conv.code).unwrap();
        m2.run(&pipe.code).unwrap();
        assert_eq!(
            m1.memory(),
            m2.memory(),
            "seed {seed}, plan {:?}\n{}",
            alloc.plan,
            arrayflow_ir::pretty::print_program(&p)
        );
        // Pipelining may only ever add its constant start-up cost: the
        // pre-loop initialization loads one value per pipeline stage. When
        // every reuse point sits under a conditional that never fires at
        // run time, the savings are zero and that start-up cost is the
        // whole difference; any growth beyond it is a real regression.
        let startup: u64 = alloc.plan.ranges.iter().map(|r| r.depth as u64).sum();
        assert!(
            m2.stats.loads <= m1.stats.loads + startup,
            "seed {seed}: pipelining must not add loads beyond start-up \
             (conv {}, pipe {}, start-up allowance {startup})",
            m1.stats.loads,
            m2.stats.loads
        );

        // The unrolled (modulo-renamed) progression must agree too.
        let unr = compile_with_style(&p, &alloc.plan, PipelineStyle::Unrolled).unwrap();
        let mut m3 = Machine::new();
        for a in p.symbols.array_ids() {
            for k in -64..600 {
                m3.set_mem(a, k, (k * 17 + 3) % 89);
            }
        }
        for v in p.symbols.var_ids() {
            m3.set_reg(unr.scalar_regs[&v], (v.0 as i64 % 7) - 2);
        }
        m3.run(&unr.code).unwrap();
        assert_eq!(
            m1.memory(),
            m3.memory(),
            "seed {seed}: unrolled pipeline diverges\n{}",
            arrayflow_ir::pretty::print_program(&p)
        );
    }
}

/// A tracing interpreter for single-level loops: records, per array element,
/// the last site that *generated* a value into it (write, or read for
/// use-generators) and the iteration when that happened.
struct Tracer {
    env: Env,
    /// (array, index) → (stmt, iteration, was_def)
    last_gen: HashMap<(arrayflow_ir::ArrayId, i64), (StmtId, i64, bool)>,
    /// Collected violations.
    violations: Vec<String>,
    /// Expected providers: (use stmt, textual ref) → (gen stmt, distance,
    /// gen_is_def).
    expectations: HashMap<(StmtId, arrayflow_ir::ArrayRef), (StmtId, u64, bool)>,
    start_up: u64,
}

impl Tracer {
    fn eval(&mut self, e: &Expr, stmt: StmtId, iter: i64) -> i64 {
        match e {
            Expr::Const(c) => *c,
            Expr::Scalar(v) => self.env.scalar(*v),
            Expr::Elem(r) => {
                let idx: Vec<i64> = r.subs.iter().map(|s| self.eval(s, stmt, iter)).collect();
                let key = (r.array, idx[0]);
                // Check the expectation for this use site.
                if idx.len() == 1 && iter > self.start_up as i64 {
                    if let Some(&(gen_stmt, dist, gen_is_def)) =
                        self.expectations.get(&(stmt, r.clone()))
                    {
                        match self.last_gen.get(&key) {
                            Some(&(actual_stmt, actual_iter, actual_def)) => {
                                // The provider recorded the element in
                                // iteration iter − dist.
                                if gen_is_def
                                    && actual_def
                                    && (actual_stmt != gen_stmt
                                        || actual_iter != iter - dist as i64)
                                {
                                    self.violations.push(format!(
                                        "use {stmt:?} at iter {iter}: expected def {gen_stmt:?}@{}, \
                                         last generator was {actual_stmt:?}@{actual_iter}",
                                        iter - dist as i64
                                    ));
                                }
                            }
                            None => self.violations.push(format!(
                                "use {stmt:?} at iter {iter}: element never generated"
                            )),
                        }
                    }
                }
                let v = self.env.elem(r.array, &idx);
                if idx.len() == 1 {
                    // Record the read as a (use-kind) generation only if
                    // nothing newer exists; defs always overwrite below.
                    self.last_gen.entry(key).or_insert((stmt, iter, false));
                }
                v
            }
            Expr::Bin(op, l, rr) => {
                let a = self.eval(l, stmt, iter);
                let b = self.eval(rr, stmt, iter);
                match op {
                    arrayflow_ir::BinOp::Add => a.wrapping_add(b),
                    arrayflow_ir::BinOp::Sub => a.wrapping_sub(b),
                    arrayflow_ir::BinOp::Mul => a.wrapping_mul(b),
                    arrayflow_ir::BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a / b
                        }
                    }
                }
            }
        }
    }

    fn exec_block(&mut self, block: &[Stmt], iter: i64) {
        for s in block {
            match s {
                Stmt::Assign(a) => {
                    let v = self.eval(&a.rhs, a.id, iter);
                    match &a.lhs {
                        LValue::Scalar(sc) => self.env.set_scalar(*sc, v),
                        LValue::Elem(r) => {
                            let idx: Vec<i64> =
                                r.subs.iter().map(|e| self.eval(e, a.id, iter)).collect();
                            if idx.len() == 1 {
                                self.last_gen.insert((r.array, idx[0]), (a.id, iter, true));
                            }
                            self.env.set_elem(r.array, idx, v);
                        }
                    }
                }
                Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    let Cond { lhs, op, rhs } = cond;
                    let l = self.eval(lhs, StmtId::UNASSIGNED, iter);
                    let r = self.eval(rhs, StmtId::UNASSIGNED, iter);
                    if op.eval(l, r) {
                        self.exec_block(then_blk, iter);
                    } else {
                        self.exec_block(else_blk, iter);
                    }
                }
                Stmt::Do(_) => panic!("tracer only handles single-level loops"),
            }
        }
    }
}

#[test]
fn reported_def_reuses_hold_dynamically() {
    let shape = LoopShape {
        stmts: 8,
        arrays: 2,
        cond_pct: 30,
        max_offset: 4,
        max_coef: 1, // coefficient 1 keeps element↔iteration mapping simple
        ub: 40,
    };
    let mut total_checked = 0usize;
    for seed in 0..50 {
        let p = random_loop(&shape, 97_000 + seed);
        let analysis = analyze_loop(&p).unwrap();
        let reuses = analysis.reuse_pairs();
        let mut expectations = HashMap::new();
        let mut max_dist = 0;
        for r in &reuses {
            // Validate def-provided reuses (the ones register allocation
            // relies on most).
            if !r.gen_is_def {
                continue;
            }
            let us = &analysis.sites[r.use_site];
            let gs = &analysis.sites[r.gen_site];
            let (Some(ustmt), Some(gstmt)) = (us.stmt, gs.stmt) else {
                continue;
            };
            expectations.insert((ustmt, us.aref.clone()), (gstmt, r.distance, true));
            max_dist = max_dist.max(r.distance);
            total_checked += 1;
        }
        if expectations.is_empty() {
            continue;
        }
        let l = p.sole_loop().unwrap();
        let mut tracer = Tracer {
            env: Env::new(),
            last_gen: HashMap::new(),
            violations: Vec::new(),
            expectations,
            start_up: max_dist,
        };
        seed_env(&p, &mut tracer.env);
        let ub = l.upper.as_const().unwrap();
        for iter in 1..=ub {
            tracer.env.set_scalar(l.iv, iter);
            let body = l.body.clone();
            tracer.exec_block(&body, iter);
        }
        assert!(
            tracer.violations.is_empty(),
            "seed {seed}:\n{}\nprogram:\n{}",
            tracer.violations.join("\n"),
            arrayflow_ir::pretty::print_program(&p)
        );
    }
    assert!(
        total_checked > 20,
        "fuzz should exercise a healthy number of reuses, got {total_checked}"
    );
}

#[test]
fn register_allocation_preserves_semantics_on_random_loops() {
    use arrayflow::machine::{assign_physical, Reg};
    use arrayflow_ir::ArrayId;

    let shape = LoopShape {
        stmts: 8,
        arrays: 2,
        cond_pct: 30,
        max_offset: 4,
        max_coef: 2,
        ub: 40,
    };
    for seed in 0..25 {
        let p = random_loop(&shape, 64_000 + seed);
        let c = compile(&p).unwrap();
        let pinned: Vec<Reg> = c.scalar_regs.values().copied().collect();
        let spill = ArrayId(p.symbols.num_arrays() as u32 + 7);
        for k in [4u32, 6, 12] {
            let alloc = assign_physical(&c.code, k, spill, &pinned).unwrap();
            assert!(alloc.physical_used <= k, "seed {seed}, k {k}");
            let mut m1 = Machine::new();
            let mut m2 = Machine::new();
            for a in p.symbols.array_ids() {
                for i in -64..400 {
                    m1.set_mem(a, i, (i * 23 + 1) % 71);
                    m2.set_mem(a, i, (i * 23 + 1) % 71);
                }
            }
            for (v, &r) in &c.scalar_regs {
                let value = (v.0 as i64 % 7) - 2;
                m1.set_reg(r, value);
                alloc.seed(&mut m2, r, value);
            }
            m1.run(&c.code).unwrap();
            m2.run(&alloc.code).unwrap();
            for a in p.symbols.array_ids() {
                assert_eq!(
                    m1.memory().get(&a),
                    m2.memory().get(&a),
                    "seed {seed}, k {k}, array {}\n{}",
                    p.array_name(a),
                    arrayflow_ir::pretty::print_program(&p)
                );
            }
            // Scalar results are recoverable through the map.
            for (v, &r) in &c.scalar_regs {
                assert_eq!(
                    m1.reg(r),
                    alloc.read(&m2, r),
                    "seed {seed}, k {k}, scalar {}",
                    p.name(*v)
                );
            }
        }
    }
}
